open Pc_lp
open Pc_milp
module S = Simplex

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-5))

let get_opt = function
  | Milp.Optimal r -> r
  | Milp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Milp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Milp.Stopped _ -> Alcotest.fail "unexpected early stop"

let test_knapsack () =
  (* max 5x + 4y s.t. 6x + 5y <= 10, integer -> LP gives fractional,
     integer optimum is x=0,y=2 (8) or x=1,y=0 (5): 8 *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 5.); (1, 4.) ];
      constraints = [ S.c_le [ (0, 6.); (1, 5.) ] 10. ];
      var_bounds = [];
    }
  in
  let r = get_opt (Milp.solve p) in
  Alcotest.(check bool) "exact" true r.Milp.exact;
  check_float "optimum" 8. r.Milp.bound;
  match r.Milp.incumbent with
  | Some s ->
      check_float "x" 0. s.S.values.(0);
      check_float "y" 2. s.S.values.(1)
  | None -> Alcotest.fail "expected incumbent"

let test_fractional_lp_gap () =
  (* max x + y s.t. 2x + 2y <= 3: LP gives 1.5, MILP 1 *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.); (1, 1.) ];
      constraints = [ S.c_le [ (0, 2.); (1, 2.) ] 3. ];
      var_bounds = [];
    }
  in
  let r = get_opt (Milp.solve p) in
  check_float "integer optimum" 1. r.Milp.bound;
  Alcotest.(check bool) "exact" true r.Milp.exact

let test_minimization () =
  (* min 3x + 4y s.t. x + y >= 2.5 (integers) -> (x,y) sums to >= 2.5 so
     best integers: x=3,y=0 -> 9? check x=2,y=1 -> 10; x=3 y=0 -> 9;
     actually x + y >= 2.5 means x+y >= 3 in integers: min cost 9. *)
  let p =
    {
      S.n_vars = 2;
      maximize = false;
      objective = [ (0, 3.); (1, 4.) ];
      constraints = [ S.c_ge [ (0, 1.); (1, 1.) ] 2.5 ];
      var_bounds = [];
    }
  in
  let r = get_opt (Milp.solve p) in
  check_float "min" 9. r.Milp.bound;
  Alcotest.(check bool) "exact" true r.Milp.exact

let test_integer_infeasible () =
  (* 0.4 <= x <= 0.6 has no integer point *)
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_ge [ (0, 1.) ] 0.4; S.c_le [ (0, 1.) ] 0.6 ];
      var_bounds = [];
    }
  in
  match Milp.solve p with
  | Milp.Infeasible -> ()
  | Milp.Optimal _ | Milp.Unbounded | Milp.Stopped _ ->
      Alcotest.fail "expected infeasible"

let test_node_limit_sound () =
  (* With node_limit 1 the solver cannot close the search, but its bound
     must still dominate the true optimum. *)
  let p =
    {
      S.n_vars = 3;
      maximize = true;
      objective = [ (0, 5.); (1, 4.); (2, 3.) ];
      constraints =
        [
          S.c_le [ (0, 2.); (1, 3.); (2, 1.) ] 5.;
          S.c_le [ (0, 4.); (1, 1.); (2, 2.) ] 11.;
          S.c_le [ (0, 3.); (1, 4.); (2, 2.) ] 8.;
        ];
      var_bounds = [];
    }
  in
  let exact = get_opt (Milp.solve p) in
  let truncated = get_opt (Milp.solve ~node_limit:1 p) in
  Alcotest.(check bool) "truncated bound dominates optimum" true
    (truncated.Milp.bound >= exact.Milp.bound -. 1e-6)

let test_zero_node_budget () =
  (* node_limit 0: no branching at all — the root LP relaxation must come
     back as a truncated dual bound with no incumbent. *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 5.); (1, 4.) ];
      constraints = [ S.c_le [ (0, 6.); (1, 5.) ] 10. ];
      var_bounds = [];
    }
  in
  let exact = get_opt (Milp.solve p) in
  (match Milp.solve ~node_limit:0 p with
  | Milp.Optimal r ->
      Alcotest.(check bool) "truncated" true r.Milp.truncated;
      Alcotest.(check bool) "no proof of exactness" false r.Milp.exact;
      Alcotest.(check bool) "dual bound dominates optimum" true
        (r.Milp.bound >= exact.Milp.bound -. 1e-6)
  | Milp.Infeasible | Milp.Unbounded | Milp.Stopped _ ->
      Alcotest.fail "expected a truncated Optimal at node_limit 0");
  (* same through the budget's node pool *)
  let b = Pc_budget.Budget.start (Pc_budget.Budget.spec ~nodes:0 ()) in
  match Milp.solve ~budget:b p with
  | Milp.Optimal r ->
      Alcotest.(check bool) "budget-truncated" true r.Milp.truncated;
      Alcotest.(check bool) "budget dual bound dominates" true
        (r.Milp.bound >= exact.Milp.bound -. 1e-6)
  | Milp.Infeasible | Milp.Unbounded | Milp.Stopped _ ->
      Alcotest.fail "expected a truncated Optimal under nodes=0 budget"

let test_starved_budget_stops () =
  (* a dead iteration pool starves even the root relaxation *)
  let b = Pc_budget.Budget.start (Pc_budget.Budget.spec ~iters:0 ()) in
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_le [ (0, 1.) ] 1.5 ];
      var_bounds = [];
    }
  in
  match Milp.solve ~budget:b p with
  | Milp.Stopped _ -> ()
  | Milp.Optimal _ | Milp.Infeasible | Milp.Unbounded ->
      Alcotest.fail "expected Stopped under a zero-pivot budget"

let test_partial_integrality () =
  (* x integer, y continuous: max x + y, x <= 1.5, y <= 0.5, x+y <= 1.8 *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.); (1, 1.) ];
      constraints =
        [ S.c_le [ (0, 1.) ] 1.5; S.c_le [ (1, 1.) ] 0.5; S.c_le [ (0, 1.); (1, 1.) ] 1.8 ];
      var_bounds = [];
    }
  in
  let r = get_opt (Milp.solve ~integrality:(fun j -> j = 0) p) in
  (* x=1, y=0.5 -> 1.5 *)
  check_float "mixed optimum" 1.5 r.Milp.bound

let test_pc_interval_milp () =
  (* Interval constraints with overlapping coverage; brute-force verified:
     PC1 covers cells {0,1}: 1 <= x0+x1 <= 3
     PC2 covers cells {1,2}: 2 <= x1+x2 <= 4
     max 10 x0 + 1 x1 + 8 x2 -> x0=3, x1=0, x2=4 -> 62 *)
  let p =
    {
      S.n_vars = 3;
      maximize = true;
      objective = [ (0, 10.); (1, 1.); (2, 8.) ];
      constraints =
        [
          S.c_ge [ (0, 1.); (1, 1.) ] 1.;
          S.c_le [ (0, 1.); (1, 1.) ] 3.;
          S.c_ge [ (1, 1.); (2, 1.) ] 2.;
          S.c_le [ (1, 1.); (2, 1.) ] 4.;
        ];
      var_bounds = [];
    }
  in
  let r = get_opt (Milp.solve p) in
  check_float "optimum" 62. r.Milp.bound

(* --- randomized cross-check against exhaustive enumeration --- *)

let random_ip rng =
  let module R = Pc_util.Rng in
  let n_cons = 1 + R.int rng 3 in
  let constraints =
    List.concat
      (List.init n_cons (fun _ ->
           let c0 = float_of_int (R.int rng 3)
           and c1 = float_of_int (R.int rng 3)
           and c2 = float_of_int (R.int rng 3) in
           let hi = float_of_int (2 + R.int rng 10) in
           let lo = float_of_int (R.int rng 2) in
           [
             S.c_le [ (0, c0); (1, c1); (2, c2) ] hi;
             S.c_ge [ (0, c0); (1, c1); (2, c2) ] lo;
           ]))
  in
  let objective =
    [
      (0, float_of_int (R.int rng 7 - 2));
      (1, float_of_int (R.int rng 7 - 2));
      (2, float_of_int (R.int rng 7 - 2));
    ]
  in
  { S.n_vars = 3; maximize = true; objective; constraints; var_bounds = [] }

let brute_force p =
  (* enumerate x in {0..8}^3 *)
  let best = ref neg_infinity in
  let feasible = ref false in
  for x = 0 to 8 do
    for y = 0 to 8 do
      for z = 0 to 8 do
        let v = [| float_of_int x; float_of_int y; float_of_int z |] in
        let ok =
          List.for_all
            (fun (c : S.constr) ->
              let lhs =
                List.fold_left (fun acc (j, coef) -> acc +. (coef *. v.(j))) 0. c.S.coeffs
              in
              match c.S.op with
              | S.Le -> lhs <= c.S.rhs +. 1e-9
              | S.Ge -> lhs >= c.S.rhs -. 1e-9
              | S.Eq -> Float.abs (lhs -. c.S.rhs) <= 1e-9)
            p.S.constraints
        in
        if ok then begin
          feasible := true;
          let obj =
            List.fold_left (fun acc (j, coef) -> acc +. (coef *. v.(j))) 0. p.S.objective
          in
          if obj > !best then best := obj
        end
      done
    done
  done;
  if !feasible then Some !best else None

let prop_matches_bruteforce =
  QCheck.Test.make ~name:"MILP matches exhaustive enumeration" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Pc_util.Rng.create (seed + 1000) in
      let p = random_ip rng in
      (* cap the search space so brute force is complete *)
      let p =
        {
          p with
          S.constraints =
            p.S.constraints
            @ [ S.c_le [ (0, 1.) ] 8.; S.c_le [ (1, 1.) ] 8.; S.c_le [ (2, 1.) ] 8. ];
        }
      in
      match (Milp.solve p, brute_force p) with
      | Milp.Infeasible, None -> true
      | Milp.Optimal r, Some best ->
          r.Milp.exact && Float.abs (r.Milp.bound -. best) < 1e-4
      | Milp.Optimal _, None
      | Milp.Infeasible, Some _
      | Milp.Unbounded, _
      | Milp.Stopped _, _ ->
          false)

(* --- warm-start equivalence and work reduction --- *)

let random_bounded_ip rng =
  (* random_ip plus a random box on each variable, so branching interacts
     with pre-existing var_bounds, not just the implicit x >= 0 domain *)
  let module R = Pc_util.Rng in
  let p = random_ip rng in
  let var_bounds =
    List.init p.S.n_vars (fun j ->
        let lo = float_of_int (R.int rng 2) in
        let hi = lo +. float_of_int (R.int rng 7) in
        (j, lo, hi))
  in
  { p with S.var_bounds }

let prop_warm_matches_cold =
  QCheck.Test.make
    ~name:"warm-started B&B matches the cold-start reference" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Pc_util.Rng.create (seed + 5000) in
      let p = random_bounded_ip rng in
      match (Milp.solve ~warm:true p, Milp.solve ~warm:false p) with
      | Milp.Optimal w, Milp.Optimal c ->
          Float.abs (w.Milp.bound -. c.Milp.bound) <= 1e-6
          && w.Milp.exact = c.Milp.exact
          && Option.is_some w.Milp.incumbent = Option.is_some c.Milp.incumbent
      | Milp.Infeasible, Milp.Infeasible -> true
      | Milp.Unbounded, Milp.Unbounded -> true
      | _, _ -> false)

(* lp.pivots counts every pivot; lp.phase1_pivots and lp.dual_pivots are
   breakdowns of it, not additions *)
let total_pivots () =
  let module C = Pc_obs.Registry.Counter in
  C.get (C.make "lp.pivots")

let test_warm_does_less_work () =
  (* A nested-bound chain: prefix-sum caps at k + 0.5 force a branching
     at every depth, so the search dives through a chain of boxes that
     each tighten one bound. Warm children re-optimize the parent basis
     with a few dual pivots; cold children redo phase 1 + phase 2. *)
  let n = 6 in
  let p =
    {
      S.n_vars = n;
      maximize = true;
      objective = List.init n (fun j -> (j, 1.));
      constraints =
        List.init n (fun k ->
            S.c_le
              (List.init (k + 1) (fun i -> (i, 1.)))
              (float_of_int k +. 1.5));
      var_bounds = [];
    }
  in
  let pivots_of warm =
    let before = total_pivots () in
    (match (Milp.solve ~warm p, Milp.solve ~warm:false p) with
    | Milp.Optimal a, Milp.Optimal b ->
        Alcotest.(check (float 1e-6)) "same bound" b.Milp.bound a.Milp.bound
    | _ -> Alcotest.fail "expected Optimal both ways");
    total_pivots () - before
  in
  (* each measurement also runs the cold reference, so comparing the two
     measurements compares warm+cold against cold+cold *)
  let warm_total = pivots_of true and cold_total = pivots_of false in
  Alcotest.(check bool)
    (Printf.sprintf "warm (%d) strictly fewer pivots than cold (%d)"
       warm_total cold_total)
    true
    (warm_total < cold_total);
  let module C = Pc_obs.Registry.Counter in
  Alcotest.(check bool) "warm starts were recorded" true
    (C.get (C.make "lp.warm_starts") > 0)

let () =
  Alcotest.run "pc_milp"
    [
      ( "milp",
        [
          tc "knapsack" `Quick test_knapsack;
          tc "fractional gap" `Quick test_fractional_lp_gap;
          tc "minimization" `Quick test_minimization;
          tc "integer infeasible" `Quick test_integer_infeasible;
          tc "node limit soundness" `Quick test_node_limit_sound;
          tc "zero-node dual bound" `Quick test_zero_node_budget;
          tc "starved budget stops" `Quick test_starved_budget_stops;
          tc "partial integrality" `Quick test_partial_integrality;
          tc "pc interval shape" `Quick test_pc_interval_milp;
          tc "warm does less work" `Quick test_warm_does_less_work;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_bruteforce;
          QCheck_alcotest.to_alcotest prop_warm_matches_cold;
        ] );
    ]
