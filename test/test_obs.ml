(* Observability layer: span tracer, metrics registry, JSON validator.

   Tracing and histogram recording are global switches, so every test
   that flips them restores the disabled default before returning —
   test order must not matter. *)

module Trace = Pc_obs.Trace
module Registry = Pc_obs.Registry
module Json = Pc_obs.Json

let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let with_metrics f =
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Registry.set_enabled false) f

(* ---- tracer ---- *)

let test_disabled_is_transparent () =
  Trace.set_enabled false;
  Trace.reset ();
  let r = Trace.with_span ~name:"ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_nesting_depths () =
  with_tracing (fun () ->
      Trace.with_span ~name:"outer" (fun () ->
          Trace.with_span ~name:"mid" (fun () ->
              Trace.with_span ~name:"inner" (fun () -> ()));
          Trace.with_span ~name:"mid2" (fun () -> ()));
      let spans = Trace.spans () in
      let depth name =
        (List.find (fun (s : Trace.span) -> s.Trace.name = name) spans)
          .Trace.depth
      in
      Alcotest.(check int) "spans" 4 (List.length spans);
      Alcotest.(check int) "outer depth" 0 (depth "outer");
      Alcotest.(check int) "mid depth" 1 (depth "mid");
      Alcotest.(check int) "inner depth" 2 (depth "inner");
      Alcotest.(check int) "mid2 depth" 1 (depth "mid2");
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check bool)
            (s.Trace.name ^ " non-negative duration")
            true
            (s.Trace.dur_ns >= 0L))
        spans)

let test_span_closed_on_raise () =
  with_tracing (fun () ->
      (try Trace.with_span ~name:"boom" (fun () -> failwith "x")
       with Failure _ -> ());
      match Trace.spans () with
      | [ s ] ->
          Alcotest.(check string) "recorded despite raise" "boom" s.Trace.name
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_add_attr () =
  with_tracing (fun () ->
      Trace.with_span ~name:"s" (fun () -> Trace.add_attr "k" "v");
      match Trace.spans () with
      | [ s ] ->
          Alcotest.(check (list (pair string string)))
            "attr attached"
            [ ("k", "v") ]
            s.Trace.attrs
      | _ -> Alcotest.fail "expected 1 span")

let test_chrome_json_valid () =
  with_tracing (fun () ->
      Trace.with_span ~name:"a" ~attrs:[ ("weird", "quote\"back\\slash") ]
        (fun () -> Trace.with_span ~name:"b" (fun () -> ()));
      let json = Trace.to_chrome_json () in
      match Json.validate json with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "chrome trace JSON invalid: %s" msg)

(* The pipeline's span set must not depend on the pool size: the pool
   records its map span on the sequential fallback too, and per-chunk
   timings go to histograms, not spans. *)
let span_set_of_run jobs =
  let pool = Pc_par.Pool.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Pc_par.Pool.shutdown pool)
    (fun () ->
      with_tracing (fun () ->
          let rng = Pc_util.Rng.create 7 in
          let pcs =
            List.init 6 (fun i ->
                let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:60. in
                let w = Pc_util.Rng.uniform rng ~lo:20. ~hi:50. in
                Pc_core.Pc.make
                  ~name:(Printf.sprintf "p%d" i)
                  ~pred:[ Pc_predicate.Atom.between "x" lo (lo +. w) ]
                  ~values:[ ("v", Pc_interval.Interval.closed 0. 100.) ]
                  ~freq:(0, 10) ())
          in
          let set = Pc_core.Pc_set.make pcs in
          let queries =
            List.init 8 (fun i ->
                Pc_query.Query.count
                  ~where_:[ Pc_predicate.Atom.between "x" 0. (20. +. float_of_int i) ]
                  ())
          in
          ignore
            (Pc_par.Pool.parallel_map pool
               (fun q -> Pc_core.Bounds.bound set q)
               queries);
          Trace.span_names ()))

let test_jobs_span_parity () =
  let seq = span_set_of_run 1 in
  let par = span_set_of_run 4 in
  Alcotest.(check (list string)) "same span set for jobs=1 and jobs=4" seq par

(* ---- registry ---- *)

let test_counters () =
  let c = Registry.Counter.make "test.counter" in
  Registry.Counter.clear c;
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "accumulates" 42 (Registry.Counter.get c);
  let c' = Registry.Counter.make "test.counter" in
  Alcotest.(check int) "registration is idempotent" 42 (Registry.Counter.get c');
  Alcotest.(check bool)
    "listed in registry" true
    (List.mem_assoc "test.counter" (Registry.counters ()));
  Registry.Counter.clear c

let test_histogram_basics () =
  let h = Registry.Histogram.make "test.hist" in
  Registry.Histogram.clear h;
  Registry.Histogram.observe_ns h 1000.;
  Alcotest.(check int) "disabled: not recorded" 0 (Registry.Histogram.count h);
  with_metrics (fun () ->
      List.iter
        (fun v -> Registry.Histogram.observe_ns h v)
        [ 100.; 200.; 400.; 800.; 100_000. ];
      Alcotest.(check int) "count" 5 (Registry.Histogram.count h);
      let p50 = Registry.Histogram.percentile_ns h 50. in
      Alcotest.(check int)
        "p50 lands in the bucket of the exact median"
        (Registry.Histogram.bucket_of_ns 400.)
        (Registry.Histogram.bucket_of_ns p50));
  Registry.Histogram.clear h

(* Bucket-resolution accuracy contract, checked against
   Pc_util.Stat.percentile. Stat interpolates between the two order
   statistics bracketing rank p/100*(n-1); the histogram answers with a
   representative of the bucket holding its nearest-rank sample, which
   lies between those same two order statistics. So the estimate's
   bucket must fall inside the bracketing stats' bucket range — and
   when that range is a single bucket (the dense-histogram regime), the
   estimate is within one bucket of the exact percentile. *)
let histogram_percentile_prop =
  QCheck.Test.make ~name:"histogram percentile brackets Stat.percentile"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 80) (float_range 1. 1e9))
        (float_range 0. 100.))
    (fun (samples, p) ->
      let h = Registry.Histogram.make "test.hist.prop" in
      Registry.Histogram.clear h;
      Registry.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Registry.set_enabled false;
          Registry.Histogram.clear h)
        (fun () ->
          List.iter (fun v -> Registry.Histogram.observe_ns h v) samples;
          let est = Registry.Histogram.percentile_ns h p in
          let exact = Pc_util.Stat.percentile (Array.of_list samples) p in
          let ys = Array.of_list samples in
          Array.sort compare ys;
          let n = Array.length ys in
          let r = p /. 100. *. float_of_int (n - 1) in
          let lo = min (n - 1) (int_of_float (Float.floor r)) in
          let hi = min (n - 1) (int_of_float (Float.ceil r)) in
          let be = Registry.Histogram.bucket_of_ns est in
          let blo = Registry.Histogram.bucket_of_ns ys.(lo) in
          let bhi = Registry.Histogram.bucket_of_ns ys.(hi) in
          let bx = Registry.Histogram.bucket_of_ns exact in
          blo <= be && be <= bhi
          && (bhi > blo || abs (be - bx) <= 1)))

(* Exact extremes ride alongside the log2 buckets: min/max/mean are not
   bucket-quantized, while the percentile semantics stay untouched. *)
let test_histogram_exact_extremes () =
  let h = Registry.Histogram.make "test.hist.extremes" in
  Registry.Histogram.clear h;
  Alcotest.(check int) "empty min is 0" 0 (Registry.Histogram.min_ns h);
  Alcotest.(check int) "empty max is 0" 0 (Registry.Histogram.max_ns h);
  Alcotest.(check (float 0.)) "empty mean is 0" 0. (Registry.Histogram.mean_ns h);
  with_metrics (fun () ->
      List.iter
        (fun v -> Registry.Histogram.observe_ns h v)
        [ 700.; 300.; 1100.; 500. ];
      Alcotest.(check int) "exact min" 300 (Registry.Histogram.min_ns h);
      Alcotest.(check int) "exact max" 1100 (Registry.Histogram.max_ns h);
      Alcotest.(check (float 1e-9)) "exact mean" 650.
        (Registry.Histogram.mean_ns h);
      (* same-bucket values stay distinguishable in the extremes *)
      Alcotest.(check int)
        "min and max share a percentile bucket regime"
        (Registry.Histogram.bucket_of_ns 300.)
        (Registry.Histogram.bucket_of_ns 500.));
  Registry.Histogram.clear h;
  Alcotest.(check int) "clear resets min" 0 (Registry.Histogram.min_ns h);
  Alcotest.(check int) "clear resets max" 0 (Registry.Histogram.max_ns h)

let test_dumps_valid_json () =
  with_metrics (fun () ->
      let h = Registry.Histogram.make "test.hist.dump" in
      Registry.Histogram.observe_ns h 5000.;
      (match Json.validate (Registry.dump_json ()) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "dump_json invalid: %s" msg);
      Registry.Histogram.clear h)

let test_empty_histogram_percentile () =
  let h = Registry.Histogram.make "test.hist.empty" in
  Registry.Histogram.clear h;
  Alcotest.(check (float 0.)) "empty percentile is 0" 0.
    (Registry.Histogram.percentile_ns h 99.)

(* ---- pipeline counters as views ---- *)

let test_sat_counters_are_views () =
  Pc_predicate.Sat.reset_calls ();
  let cnf = Pc_predicate.Cnf.of_pred [ Pc_predicate.Atom.between "x" 0. 1. ] in
  ignore (Pc_predicate.Sat.check cnf);
  Alcotest.(check int) "calls view" 1 (Pc_predicate.Sat.calls ());
  Alcotest.(check bool)
    "registered counter agrees" true
    (List.assoc "sat.calls" (Registry.counters ()) = 1)

let test_budget_snapshot () =
  let b = Pc_budget.Budget.unlimited () in
  ignore (Pc_budget.Budget.take_cell b);
  ignore (Pc_budget.Budget.take_sat b);
  ignore (Pc_budget.Budget.take_sat b);
  let snap = Pc_budget.Budget.snapshot b in
  let get r = List.assoc r snap in
  Alcotest.(check int) "cells" 1 (get Pc_budget.Budget.Cells);
  Alcotest.(check int) "sat" 2 (get Pc_budget.Budget.Sat_calls);
  Alcotest.(check int) "nodes" 0 (get Pc_budget.Budget.Nodes);
  Alcotest.(check int) "iters" 0 (get Pc_budget.Budget.Iterations)

(* ---- JSON validator ---- *)

let test_json_validator () =
  let ok s =
    match Json.validate s with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%S rejected: %s" s m
  in
  let bad s =
    match Json.validate s with
    | Ok () -> Alcotest.failf "%S accepted" s
    | Error _ -> ()
  in
  ok {|{"a": [1, 2.5, -3e4], "b": {"c": null, "d": "x\ny"}, "e": true}|};
  ok "[]";
  ok "  42  ";
  ok {|"lone string"|};
  bad "{\"a\": NaN}";
  bad "{\"a\": Infinity}";
  bad "[1, 2,]";
  bad "{\"a\" 1}";
  bad "[1] trailing";
  bad "{\"bad\x01ctrl\": 1}";
  bad ""

let () =
  Alcotest.run "pc_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled is transparent" `Quick
            test_disabled_is_transparent;
          Alcotest.test_case "nesting depths" `Quick test_nesting_depths;
          Alcotest.test_case "closed on raise" `Quick test_span_closed_on_raise;
          Alcotest.test_case "add_attr" `Quick test_add_attr;
          Alcotest.test_case "chrome JSON validates" `Quick
            test_chrome_json_valid;
          Alcotest.test_case "span set independent of jobs" `Quick
            test_jobs_span_parity;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
          Alcotest.test_case "histogram exact extremes" `Quick
            test_histogram_exact_extremes;
          Alcotest.test_case "dump_json validates" `Quick test_dumps_valid_json;
          Alcotest.test_case "empty histogram" `Quick
            test_empty_histogram_percentile;
          QCheck_alcotest.to_alcotest histogram_percentile_prop;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sat counters are views" `Quick
            test_sat_counters_are_views;
          Alcotest.test_case "budget snapshot" `Quick test_budget_snapshot;
        ] );
      ("json", [ Alcotest.test_case "validator" `Quick test_json_validator ]);
    ]
