(* The domain pool and its interaction with the solver stack:
   - parallel_map keeps the sequential contract (order, values, first
     error by input position, nested calls);
   - the incremental DFS decomposition agrees with the Naive 2^n
     enumeration on random overlapping sets up to n = 10;
   - a budget shared across a parallel map stays sound: crushed caps
     never raise, and the degraded value never tightens below exact. *)

module Pool = Pc_par.Pool
module Cells = Pc_core.Cells
module Pc = Pc_core.Pc
module Pc_set = Pc_core.Pc_set
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval
module B = Pc_budget.Budget

let tc = Alcotest.test_case

(* one shared 4-worker pool: domain spawn/join per test case is the
   expensive part, not the maps. Unclamped so the multi-domain paths are
   exercised even on a single-core CI host. *)
let pool4 = Pool.create_unclamped ~jobs:4

(* ------------------------- parallel_map ---------------------------- *)

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"parallel_map = List.map (order and values)"
    ~count:100
    QCheck.(list int)
    (fun xs ->
      let f x = (x * 37) mod 101 in
      Pool.parallel_map pool4 f xs = List.map f xs
      && Pool.parallel_map Pool.sequential f xs = List.map f xs)

let test_first_error_by_position () =
  (* several failing elements: the re-raised error must be the one a
     sequential List.map would hit first, not the first to finish *)
  let xs = List.init 64 Fun.id in
  let f x = if x mod 17 = 13 then failwith (Printf.sprintf "boom %d" x) else x in
  Alcotest.check_raises "lowest failing index wins" (Failure "boom 13")
    (fun () -> ignore (Pool.parallel_map pool4 f xs))

let test_nested_map_completes () =
  (* a task mapping on the same pool must degrade to sequential instead
     of deadlocking on its own queue *)
  let outer = List.init 8 Fun.id in
  let result =
    Pool.parallel_map pool4
      (fun i ->
        List.fold_left ( + ) 0
          (Pool.parallel_map pool4 (fun j -> (i * 10) + j) [ 1; 2; 3 ]))
      outer
  in
  let expected =
    List.map (fun i -> List.fold_left ( + ) 0 [ (i * 10) + 1; (i * 10) + 2; (i * 10) + 3 ]) outer
  in
  Alcotest.(check (list int)) "nested result" expected result

let test_default_pool_roundtrip () =
  Alcotest.(check int) "starts sequential" 1 (Pool.jobs (Pool.default ()));
  Pool.set_default_jobs 3;
  Alcotest.(check int) "resized" 3 (Pool.jobs (Pool.default ()));
  Alcotest.(check bool) "effective jobs clamped to cores" true
    (Pool.effective_jobs (Pool.default ())
    <= min 3 (Pool.available_cores ()));
  Pool.set_default_jobs 1;
  Alcotest.(check int) "back to sequential" 1 (Pool.jobs (Pool.default ()))

let test_small_work_set_stays_sequential () =
  (* under chunk_threshold × effective items the pool must not pay the
     handoff; output equality is the only observable, so just pin it *)
  let xs = List.init (Pool.chunk_threshold * Pool.effective_jobs pool4 - 1) Fun.id in
  Alcotest.(check (list int))
    "tiny batch" (List.map succ xs)
    (Pool.parallel_map pool4 succ xs)

(* -------------------- incremental decomposition -------------------- *)

(* random overlapping one-attribute ranges, the decomposition worst case *)
let random_pc_set rng k =
  let pcs =
    List.init k (fun i ->
        let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
        let w = Pc_util.Rng.uniform rng ~lo:10. ~hi:50. in
        Pc.make
          ~name:(Printf.sprintf "p%d" i)
          ~pred:[ Atom.between "x" lo (lo +. w) ]
          ~values:[ ("v", I.closed 0. 10.) ]
          ~freq:(0, 1 + Pc_util.Rng.int rng 9) ())
  in
  Pc_set.make pcs

let prop_incremental_matches_naive =
  (* n up to 10 keeps the Naive 2^n - 1 enumeration affordable while
     exercising deep incremental prefixes (box threading + witness
     reuse) against the ground truth *)
  QCheck.Test.make ~name:"incremental DFS = Naive cell set (n <= 10)"
    ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let set = random_pc_set rng (2 + Pc_util.Rng.int rng 9) in
      let norm cells =
        List.map (fun c -> c.Cells.active) cells |> List.sort compare
      in
      let naive = norm (fst (Cells.decompose ~strategy:Cells.Naive set)) in
      let dfs = norm (fst (Cells.decompose ~strategy:Cells.Dfs set)) in
      let rw = norm (fst (Cells.decompose ~strategy:Cells.Dfs_rewrite set)) in
      naive = dfs && naive = rw)

(* ---------------------- shared budgets ----------------------------- *)

let join_tables rng =
  let n = 20 + Pc_util.Rng.int rng 100 in
  let edges a b =
    Pc_synth.Graphs.random_edges rng ~a ~b ~n ~vertices:(max 2 (n / 2))
  in
  let pcs rel attr =
    Pc_set.make
      (Pc_core.Generate.corr_partition rel ~attrs:[ attr ] ~n:8 ~value_attrs:[] ())
  in
  [
    Pc_join.Join_bound.table ~name:"R" ~join_attrs:[ "a"; "b" ] (pcs (edges "a" "b") "a");
    Pc_join.Join_bound.table ~name:"S" ~join_attrs:[ "b"; "c" ] (pcs (edges "b" "c") "b");
    Pc_join.Join_bound.table ~name:"T" ~join_attrs:[ "c"; "a" ] (pcs (edges "c" "a") "c");
  ]

let prop_parallel_join_deterministic =
  QCheck.Test.make ~name:"parallel join bound = sequential (unbudgeted)"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let tables = join_tables (Pc_util.Rng.create seed) in
      Pc_join.Join_bound.count_bound ~pool:Pool.sequential tables
      = Pc_join.Join_bound.count_bound ~pool:pool4 tables)

let prop_crushed_shared_budget_sound =
  (* one crushed budget shared by all per-table solves running on four
     domains: must not raise, and the degraded bound may only loosen
     (>=) relative to the exact sequential value *)
  QCheck.Test.make ~name:"crushed shared budget: no raise, never tightens"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let tables = join_tables (Pc_util.Rng.create seed) in
      let exact = Pc_join.Join_bound.count_bound ~pool:Pool.sequential tables in
      let crushed =
        B.start (B.spec ~timeout:0. ~cells:1 ~sat_calls:0 ~nodes:0 ~iters:1 ())
      in
      let degraded =
        Pc_join.Join_bound.count_bound ~budget:crushed ~pool:pool4 tables
      in
      degraded >= exact -. 1e-9)

let () =
  Alcotest.run "pc_par"
    [
      ( "pool",
        [
          QCheck_alcotest.to_alcotest prop_map_matches_list_map;
          tc "first error by position" `Quick test_first_error_by_position;
          tc "nested map completes" `Quick test_nested_map_completes;
          tc "default pool roundtrip" `Quick test_default_pool_roundtrip;
          tc "small work set stays sequential" `Quick
            test_small_work_set_stays_sequential;
        ] );
      ( "incremental",
        [ QCheck_alcotest.to_alcotest prop_incremental_matches_naive ] );
      ( "shared budget",
        [
          QCheck_alcotest.to_alcotest prop_parallel_join_deterministic;
          QCheck_alcotest.to_alcotest prop_crushed_shared_budget_sound;
        ] );
    ]
