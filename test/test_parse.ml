open Pc_parse
module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval

let tc = Alcotest.test_case

(* ------------------------------ lexer ------------------------------ *)

let test_lexer_basics () =
  let tokens = Lexer.tokenize "select sum(price) where utc >= 10.5" in
  Alcotest.(check int) "token count" 10 (List.length tokens);
  Alcotest.(check bool) "ends with eof" true
    (List.nth tokens 9 = Lexer.Eof);
  Alcotest.(check bool) "number lexed" true (List.mem (Lexer.Number 10.5) tokens)

let test_lexer_strings () =
  match Lexer.tokenize "'New York' 'it''s'" with
  | [ Lexer.String a; Lexer.String b; Lexer.Eof ] ->
      Alcotest.(check string) "simple" "New York" a;
      Alcotest.(check string) "escaped quote" "it's" b
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_operators () =
  match Lexer.tokenize "<= >= < > = <> != =>" with
  | [ Lexer.Le; Lexer.Ge; Lexer.Lt; Lexer.Gt; Lexer.Eq; Lexer.Neq; Lexer.Neq;
      Lexer.Eq; Lexer.Gt; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments_and_negatives () =
  match Lexer.tokenize "-- a comment\n-3.5 x" with
  | [ Lexer.Number n; Lexer.Ident x; Lexer.Eof ] ->
      Alcotest.(check (float 0.)) "negative number" (-3.5) n;
      Alcotest.(check string) "ident" "x" x
  | _ -> Alcotest.fail "comment/negative lexing"

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "'oops");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "a & b");
       false
     with Failure _ -> true)

(* --------------------------- query parser --------------------------- *)

let test_parse_count () =
  let q = Query_parser.parse "SELECT COUNT(*)" in
  Alcotest.(check bool) "count" true (q.Q.agg = Q.Count);
  Alcotest.(check bool) "no predicate" true (q.Q.where_ = [])

let test_parse_sum_where () =
  let q =
    Query_parser.parse
      "select sum(price) from sales where utc >= 10 and branch = 'Chicago';"
  in
  Alcotest.(check bool) "sum" true (q.Q.agg = Q.Sum "price");
  Alcotest.(check int) "two atoms" 2 (List.length q.Q.where_);
  Alcotest.(check bool) "cat atom" true
    (List.mem (Atom.cat_eq "branch" "Chicago") q.Q.where_)

let test_parse_between_in () =
  let q =
    Query_parser.parse
      "SELECT AVG(v) WHERE t BETWEEN 2 AND 7 AND tag IN ('a', 'b')"
  in
  Alcotest.(check bool) "avg" true (q.Q.agg = Q.Avg "v");
  Alcotest.(check bool) "between" true
    (List.mem (Atom.between "t" 2. 7.) q.Q.where_);
  Alcotest.(check bool) "in list" true
    (List.mem (Atom.Cat_in ("tag", [ "a"; "b" ])) q.Q.where_)

let test_parse_all_aggs () =
  List.iter
    (fun (text, expected) ->
      let q = Query_parser.parse text in
      Alcotest.(check bool) text true (q.Q.agg = expected))
    [
      ("SELECT MIN(x)", Q.Min "x");
      ("SELECT MAX(x)", Q.Max "x");
      ("SELECT AVG(x)", Q.Avg "x");
      ("select count(*)", Q.Count);
    ]

let test_parse_query_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (Query_parser.parse text);
           false
         with Failure _ -> true))
    [
      "SELECT FROG(x)";
      "SELECT SUM(price) WHERE";
      "SELECT SUM(price) WHERE x";
      "SELECT SUM(price) trailing junk";
      "SELECT COUNT(price)";
      "WHERE x = 1";
      "SELECT AVG(v) WHERE t BETWEEN 7 AND 2";
    ]

let test_parse_predicate () =
  let p = Query_parser.parse_predicate "x <= 5 and y > 3" in
  Alcotest.(check int) "two atoms" 2 (List.length p);
  let p = Query_parser.parse_predicate "true" in
  Alcotest.(check bool) "tautology" true (p = [])

(* ---------------------------- pc parser ----------------------------- *)

let chicago_dsl =
  {|
-- the most expensive Chicago product costs 149.99
constraint chicago_cap:
  branch = 'Chicago' => price in [0.0, 149.99], count [0, 5];
|}

let test_parse_pc () =
  let pc = Pc_parser.parse_one chicago_dsl in
  Alcotest.(check string) "name" "chicago_cap" pc.Pc_core.Pc.name;
  Alcotest.(check int) "kl" 0 pc.Pc_core.Pc.freq_lo;
  Alcotest.(check int) "ku" 5 pc.Pc_core.Pc.freq_hi;
  Alcotest.(check bool) "pred" true
    (pc.Pc_core.Pc.pred = [ Atom.cat_eq "branch" "Chicago" ]);
  Alcotest.(check bool) "value range" true
    (I.equal (Pc_core.Pc.value_interval pc "price") (I.closed 0. 149.99))

let test_parse_pc_file () =
  let text =
    chicago_dsl
    ^ {|
constraint everything true => none, count [10, 100];
constraint multi x between 0 and 5 and tag <> 'bad'
  => v in [0, 1] and w in [-2, 2], count [0, 7];
|}
  in
  let pcs = Pc_parser.parse text in
  Alcotest.(check int) "three constraints" 3 (List.length pcs);
  let everything = List.nth pcs 1 in
  Alcotest.(check bool) "tautology pred" true (everything.Pc_core.Pc.pred = []);
  Alcotest.(check bool) "no value bounds" true (everything.Pc_core.Pc.values = []);
  let multi = List.nth pcs 2 in
  Alcotest.(check int) "two value ranges" 2 (List.length multi.Pc_core.Pc.values);
  Alcotest.(check int) "two pred atoms" 2 (List.length multi.Pc_core.Pc.pred)

let test_parse_pc_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (Pc_parser.parse text);
           false
         with Failure _ -> true))
    [
      "constraint x true => none, count [5, 2];";  (* kl > ku: Pc.make rejects *)
      "constraint x true => none, count [0.5, 2];";  (* fractional count *)
      "constraint x true => none count [0, 2];";  (* missing comma *)
      "constraint x true => v in [3, 1], count [0, 2];";  (* inverted range *)
      "constraint x => none, count [0, 2];";  (* missing predicate *)
    ]

let test_pc_roundtrip () =
  let original = Pc_parser.parse_one chicago_dsl in
  let reparsed = Pc_parser.parse_one (Pc_parser.to_dsl original) in
  Alcotest.(check string) "name preserved" original.Pc_core.Pc.name
    reparsed.Pc_core.Pc.name;
  Alcotest.(check bool) "pred preserved" true
    (Pc_predicate.Pred.equal original.Pc_core.Pc.pred reparsed.Pc_core.Pc.pred);
  Alcotest.(check bool) "values preserved" true
    (I.equal
       (Pc_core.Pc.value_interval original "price")
       (Pc_core.Pc.value_interval reparsed "price"))

let prop_query_roundtrip =
  (* render a random query to text, parse it back, and compare evaluation
     on random tuples *)
  let gen =
    QCheck.Gen.(
      let* n_atoms = 0 -- 3 in
      let* atoms =
        list_repeat n_atoms
          (let* lo = float_bound_inclusive 50. in
           let* w = float_bound_inclusive 20. in
           let* attr = oneofl [ "x"; "y" ] in
           return (attr, lo, lo +. w))
      in
      return atoms)
  in
  QCheck.Test.make ~name:"parsed queries evaluate like built queries" ~count:100
    (QCheck.make gen) (fun atoms ->
      let where_ = List.map (fun (a, lo, hi) -> Atom.between a lo hi) atoms in
      let built = Q.sum ~where_ "x" in
      let text =
        "SELECT SUM(x)"
        ^
        match atoms with
        | [] -> ""
        | _ ->
            " WHERE "
            ^ String.concat " AND "
                (List.map
                   (fun (a, lo, hi) -> Printf.sprintf "%s BETWEEN %.6f AND %.6f" a lo hi)
                   atoms)
      in
      let parsed = Query_parser.parse text in
      let schema =
        Pc_data.Schema.of_names
          [ ("x", Pc_data.Schema.Numeric); ("y", Pc_data.Schema.Numeric) ]
      in
      let rng = Pc_util.Rng.create 99 in
      let ok = ref true in
      for _ = 1 to 30 do
        let row =
          [|
            Pc_data.Value.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:80.);
            Pc_data.Value.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:80.);
          |]
        in
        if
          Pc_predicate.Pred.eval schema built.Q.where_ row
          <> Pc_predicate.Pred.eval schema parsed.Q.where_ row
        then ok := false
      done;
      !ok && parsed.Q.agg = built.Q.agg)

let () =
  Alcotest.run "pc_parse"
    [
      ( "lexer",
        [
          tc "basics" `Quick test_lexer_basics;
          tc "strings" `Quick test_lexer_strings;
          tc "operators" `Quick test_lexer_operators;
          tc "comments/negatives" `Quick test_lexer_comments_and_negatives;
          tc "errors" `Quick test_lexer_errors;
        ] );
      ( "query",
        [
          tc "count" `Quick test_parse_count;
          tc "sum with where" `Quick test_parse_sum_where;
          tc "between/in" `Quick test_parse_between_in;
          tc "all aggregates" `Quick test_parse_all_aggs;
          tc "errors" `Quick test_parse_query_errors;
          tc "bare predicate" `Quick test_parse_predicate;
          QCheck_alcotest.to_alcotest prop_query_roundtrip;
        ] );
      ( "pc_dsl",
        [
          tc "single constraint" `Quick test_parse_pc;
          tc "file" `Quick test_parse_pc_file;
          tc "errors" `Quick test_parse_pc_errors;
          tc "roundtrip" `Quick test_pc_roundtrip;
        ] );
    ]
