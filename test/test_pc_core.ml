open Pc_core
module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Pred = Pc_predicate.Pred
module V = Pc_data.Value
module Q = Pc_query.Query

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-4))

let schema =
  Pc_data.Schema.of_names
    [
      ("utc", Pc_data.Schema.Numeric);
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let row utc branch price = [| V.Num utc; V.Str branch; V.Num price |]

let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* ----------------------------- Pc ---------------------------------- *)

let test_pc_validation () =
  Alcotest.check_raises "kl > ku" (Invalid_argument "Pc.make: kl > ku") (fun () ->
      ignore (mk Pred.tt [] (5, 2)));
  Alcotest.check_raises "negative kl"
    (Invalid_argument "Pc.make: negative frequency lower bound") (fun () ->
      ignore (mk Pred.tt [] (-1, 2)));
  Alcotest.check_raises "duplicate values"
    (Invalid_argument "Pc.make: duplicate value-constraint attribute") (fun () ->
      ignore (mk Pred.tt [ ("p", I.closed 0. 1.); ("p", I.closed 0. 2.) ] (0, 2)))

let chicago_pc =
  mk ~name:"c1"
    [ Atom.cat_eq "branch" "Chicago" ]
    [ ("price", I.closed 0. 149.99) ]
    (0, 5)

let test_pc_holds () =
  let ok =
    Pc_data.Relation.create schema
      [ row 1. "Chicago" 100.; row 2. "Chicago" 10.; row 3. "NY" 9999. ]
  in
  Alcotest.(check bool) "holds" true (Pc.holds ok chicago_pc);
  let too_many =
    Pc_data.Relation.create schema
      (List.init 6 (fun i -> row (float_of_int i) "Chicago" 1.))
  in
  Alcotest.(check bool) "frequency violated" false (Pc.holds too_many chicago_pc);
  let bad_value =
    Pc_data.Relation.create schema [ row 1. "Chicago" 200. ]
  in
  Alcotest.(check bool) "value violated" false (Pc.holds bad_value chicago_pc);
  Alcotest.(check int) "one violation reported" 1
    (List.length (Pc.violations bad_value chicago_pc))

let test_pc_value_interval () =
  Alcotest.(check bool) "constrained" true
    (I.equal (Pc.value_interval chicago_pc "price") (I.closed 0. 149.99));
  Alcotest.(check bool) "unconstrained is full" true
    (I.equal (Pc.value_interval chicago_pc "utc") I.full)

(* --------------------------- Pc_set -------------------------------- *)

let test_set_closure_disjoint () =
  let ny =
    mk ~name:"c3"
      [ Atom.cat_eq "branch" "New York" ]
      [ ("price", I.closed 0. 100.) ]
      (0, 10)
  in
  let set = Pc_set.make [ chicago_pc; ny ] in
  Alcotest.(check bool) "disjoint" true (Pc_set.is_disjoint set);
  let rel = Pc_data.Relation.create schema [ row 1. "Chicago" 1.; row 2. "New York" 2. ] in
  Alcotest.(check bool) "closed over" true (Pc_set.closed_over rel set);
  let rel2 = Pc_data.Relation.create schema [ row 1. "Trenton" 1. ] in
  Alcotest.(check bool) "not closed" false (Pc_set.closed_over rel2 set);
  let overlap =
    mk ~name:"c2" Pred.tt [ ("price", I.closed 0. 149.99) ] (0, 100)
  in
  Alcotest.(check bool) "tautology overlaps" false
    (Pc_set.is_disjoint (Pc_set.make [ chicago_pc; overlap ]))

(* ---------------------------- Cells -------------------------------- *)

let t1 =
  mk ~name:"t1"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
    [ ("price", I.closed 0.99 129.99) ]
    (50, 100)

let t2_overlapping =
  mk ~name:"t2"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
    [ ("price", I.closed 0.99 149.99) ]
    (75, 125)

let overlapping_set = Pc_set.make [ t1; t2_overlapping ]

let test_cells_paper_example () =
  (* Section 4.4: 3 possible non-empty cells, c3 = t1 ∧ ¬t2 unsatisfiable *)
  let cells, stats = Cells.decompose ~strategy:Cells.Naive overlapping_set in
  Alcotest.(check int) "two satisfiable cells" 2 (List.length cells);
  Alcotest.(check int) "naive evaluates 2^n - 1 cells" 3 stats.Cells.sat_calls;
  let actives = List.map (fun c -> c.Cells.active) cells in
  Alcotest.(check bool) "c1 = {t1,t2}" true (List.mem [ 0; 1 ] actives);
  Alcotest.(check bool) "c2 = {t2}" true (List.mem [ 1 ] actives);
  Alcotest.(check bool) "c3 pruned" false (List.mem [ 0 ] actives)

let test_cells_strategies_agree () =
  let same_cells a b =
    let norm cells =
      List.map (fun c -> c.Cells.active) cells |> List.sort compare
    in
    norm a = norm b
  in
  let naive, _ = Cells.decompose ~strategy:Cells.Naive overlapping_set in
  let dfs, _ = Cells.decompose ~strategy:Cells.Dfs overlapping_set in
  let rewrite, _ = Cells.decompose ~strategy:Cells.Dfs_rewrite overlapping_set in
  Alcotest.(check bool) "naive = dfs" true (same_cells naive dfs);
  Alcotest.(check bool) "dfs = rewrite" true (same_cells dfs rewrite)

let random_pc_set rng k =
  let pcs =
    List.init k (fun i ->
        let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
        let w = Pc_util.Rng.uniform rng ~lo:5. ~hi:40. in
        let lo2 = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
        let w2 = Pc_util.Rng.uniform rng ~lo:5. ~hi:40. in
        mk
          ~name:(Printf.sprintf "p%d" i)
          [ Atom.between "utc" lo (lo +. w); Atom.between "price" lo2 (lo2 +. w2) ]
          [ ("price", I.closed lo2 (lo2 +. w2)) ]
          (0, 1 + Pc_util.Rng.int rng 20))
  in
  Pc_set.make pcs

let prop_strategies_agree =
  QCheck.Test.make ~name:"all strategies find the same cells" ~count:60
    QCheck.(int_bound 10_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let set = random_pc_set rng (2 + Pc_util.Rng.int rng 5) in
      let norm cells = List.map (fun c -> c.Cells.active) cells |> List.sort compare in
      let naive = norm (fst (Cells.decompose ~strategy:Cells.Naive set)) in
      let dfs = norm (fst (Cells.decompose ~strategy:Cells.Dfs set)) in
      let rewrite = norm (fst (Cells.decompose ~strategy:Cells.Dfs_rewrite set)) in
      naive = dfs && dfs = rewrite)

let prop_early_stop_superset =
  QCheck.Test.make ~name:"early stop admits a superset of true cells" ~count:60
    QCheck.(int_bound 10_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 3 + Pc_util.Rng.int rng 4 in
      let set = random_pc_set rng k in
      let norm cells = List.map (fun c -> c.Cells.active) cells |> List.sort compare in
      let exact = norm (fst (Cells.decompose ~strategy:Cells.Dfs set)) in
      let approx =
        norm (fst (Cells.decompose ~strategy:(Cells.Early_stop (k / 2)) set))
      in
      List.for_all (fun c -> List.mem c approx) exact)

let prop_rewrite_fewer_calls =
  QCheck.Test.make ~name:"rewriting never uses more solver calls than DFS"
    ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let set = random_pc_set rng (2 + Pc_util.Rng.int rng 6) in
      let _, s_dfs = Cells.decompose ~strategy:Cells.Dfs set in
      let _, s_rw = Cells.decompose ~strategy:Cells.Dfs_rewrite set in
      s_rw.Cells.sat_calls <= s_dfs.Cells.sat_calls)

(* --------------------------- Bounds -------------------------------- *)

let range_of = function
  | Bounds.Range r -> r
  | Bounds.Empty -> Alcotest.fail "unexpected Empty"
  | Bounds.Infeasible -> Alcotest.fail "unexpected Infeasible"

let test_paper_disjoint_example () =
  (* Section 4.4, disjoint case: [99.00, 27998.00] *)
  let t2 =
    mk ~name:"t2"
      [ Atom.Num_range ("utc", I.make_exn (I.Closed 12.) (I.Open 13.)) ]
      [ ("price", I.closed 0.99 149.99) ]
      (50, 100)
  in
  let set = Pc_set.make [ t1; t2 ] in
  Alcotest.(check bool) "disjoint" true (Pc_set.is_disjoint set);
  let r = range_of (Bounds.bound set (Q.sum "price")) in
  check_float "lo" 99.00 r.Range.lo;
  check_float "hi" 27998.00 r.Range.hi;
  (* greedy and general paths agree *)
  let opts = { Bounds.default_opts with Bounds.use_greedy = false } in
  let r' = range_of (Bounds.bound ~opts set (Q.sum "price")) in
  check_float "general lo" 99.00 r'.Range.lo;
  check_float "general hi" 27998.00 r'.Range.hi

let test_paper_overlapping_example () =
  (* Section 4.4, overlapping case: [74.25, 17748.75] *)
  let r = range_of (Bounds.bound overlapping_set (Q.sum "price")) in
  check_float "lo" 74.25 r.Range.lo;
  check_float "hi" 17748.75 r.Range.hi

let test_count_bounds () =
  let r = range_of (Bounds.bound overlapping_set (Q.count ())) in
  (* min rows: x1=50, x2=25 -> 75; max: x1=100, x2=25 -> 125 *)
  check_float "count lo" 75. r.Range.lo;
  check_float "count hi" 125. r.Range.hi

let test_query_pushdown () =
  (* query restricted to utc in [12, 13): only cell c2 (t2 alone) remains;
     t2's kl is not enforceable inside the window (rows may hide in
     [11,12)), so the count ranges from 0 to 125. *)
  let where_ = [ Atom.Num_range ("utc", I.make_exn (I.Closed 12.) (I.Open 13.)) ] in
  let r = range_of (Bounds.bound overlapping_set (Q.count ~where_ ())) in
  check_float "pushdown lo" 0. r.Range.lo;
  check_float "pushdown hi" 125. r.Range.hi;
  (* and values: SUM can reach 125 * 149.99 *)
  let r = range_of (Bounds.bound overlapping_set (Q.sum ~where_ "price")) in
  check_float "pushdown sum hi" (125. *. 149.99) r.Range.hi

let test_non_overlapping_query () =
  let where_ = [ Atom.between "utc" 50. 60. ] in
  let r = range_of (Bounds.bound overlapping_set (Q.sum ~where_ "price")) in
  check_float "no overlap lo" 0. r.Range.lo;
  check_float "no overlap hi" 0. r.Range.hi;
  Alcotest.(check bool) "avg empty" true
    (Bounds.bound overlapping_set (Q.avg ~where_ "price") = Bounds.Empty)

let test_infeasible () =
  (* frequency lower bound on an unsatisfiable predicate *)
  let impossible =
    mk
      [ Atom.between "utc" 0. 1.; Atom.between "utc" 5. 6. ]
      []
      (3, 10)
  in
  Alcotest.(check bool) "infeasible" true
    (Bounds.bound (Pc_set.make [ impossible ]) (Q.count ()) = Bounds.Infeasible);
  (* conflicting overlapping constraints: a sub-region must hold >= 10 rows
     but a covering constraint allows at most 2 *)
  let inner = mk [ Atom.between "utc" 0. 1. ] [] (10, 20) in
  let outer = mk [ Atom.between "utc" 0. 5. ] [] (0, 2) in
  Alcotest.(check bool) "conflicting freq" true
    (Bounds.bound (Pc_set.make [ inner; outer ]) (Q.count ()) = Bounds.Infeasible)

let test_conflict_most_restrictive () =
  (* Interacting constraints (paper §3.1 c1/c2 example): Chicago rows are
     capped at 5 and 149.99 by c1 even though c2 alone would allow 100. *)
  let c1 = chicago_pc in
  let c2 = mk ~name:"c2" Pred.tt [ ("price", I.closed 0. 200.) ] (0, 100) in
  let set = Pc_set.make [ c1; c2 ] in
  let where_ = [ Atom.cat_eq "branch" "Chicago" ] in
  let r = range_of (Bounds.bound set (Q.sum ~where_ "price")) in
  (* 5 rows at min(149.99, 200) *)
  check_float "restrictive hi" (5. *. 149.99) r.Range.hi

let test_min_max () =
  (match Bounds.bound overlapping_set (Q.max_ "price") with
  | Bounds.Range r ->
      check_float "max hi" 149.99 r.Range.hi;
      (* forced rows exist; adversary can keep everything at 0.99 *)
      check_float "max lo" 0.99 r.Range.lo
  | _ -> Alcotest.fail "expected range");
  match Bounds.bound overlapping_set (Q.min_ "price") with
  | Bounds.Range r -> check_float "min lo" 0.99 r.Range.lo
  | _ -> Alcotest.fail "expected range"

let test_avg () =
  match Bounds.bound overlapping_set (Q.avg "price") with
  | Bounds.Range r ->
      (* max avg: 50 rows at 129.99 + 75 at 149.99 / 125 ≈ 141.99;
         actually placing extra t2 rows at 149.99 dominates: with x1=50
         (at 129.99) forced and x2 up to 75 at 149.99: avg <= (50*129.99 +
         75*149.99)/125 = 141.99. *)
      Alcotest.(check bool) "avg hi sane" true
        (r.Range.hi <= 149.99 +. 1e-6 && r.Range.hi >= 141.98);
      Alcotest.(check bool) "avg lo sane" true
        (r.Range.lo >= 0.98 && r.Range.lo <= 1.0)
  | _ -> Alcotest.fail "expected range"

let test_bound_with_certain () =
  let certain =
    Pc_data.Relation.create schema [ row 11.5 "Chicago" 10.; row 12.5 "NY" 20. ]
  in
  let r =
    range_of (Bounds.bound_with_certain overlapping_set ~certain (Q.sum "price"))
  in
  check_float "shifted lo" (74.25 +. 30.) r.Range.lo;
  check_float "shifted hi" (17748.75 +. 30.) r.Range.hi;
  let r =
    range_of (Bounds.bound_with_certain overlapping_set ~certain (Q.count ()))
  in
  check_float "count shifted" 77. r.Range.lo;
  (* MAX with certain: the union max is at least the certain max *)
  let r =
    range_of (Bounds.bound_with_certain overlapping_set ~certain (Q.max_ "price"))
  in
  Alcotest.(check bool) "max lo >= certain max" true (r.Range.lo >= 20. -. 1e-9);
  check_float "max hi" 149.99 r.Range.hi

let test_generate_corr_partition () =
  let rng = Pc_util.Rng.create 1 in
  let rows =
    List.init 500 (fun i ->
        let utc = float_of_int (i mod 50) in
        let price = (10. *. utc) +. Pc_util.Rng.uniform rng ~lo:0. ~hi:5. in
        row utc (if i mod 2 = 0 then "A" else "B") price)
  in
  let rel = Pc_data.Relation.create schema rows in
  let pcs = Generate.corr_partition rel ~attrs:[ "utc" ] ~n:10 () in
  let set = Pc_set.make pcs in
  Alcotest.(check bool) "holds on source" true (Pc_set.holds rel set);
  Alcotest.(check bool) "closed over source" true (Pc_set.closed_over rel set);
  Alcotest.(check bool) "disjoint" true (Pc_set.is_disjoint set);
  Alcotest.(check bool) "about 10 buckets" true
    (List.length pcs >= 8 && List.length pcs <= 12)

let test_generate_rand_pcs () =
  let rng = Pc_util.Rng.create 2 in
  let rows = List.init 200 (fun i -> row (float_of_int i) "A" (float_of_int (i * 2))) in
  let rel = Pc_data.Relation.create schema rows in
  let pcs = Generate.rand_pcs rng rel ~attrs:[ "utc" ] ~n:15 () in
  Alcotest.(check int) "count includes catch-all" 15 (List.length pcs);
  let set = Pc_set.make pcs in
  Alcotest.(check bool) "holds on source" true (Pc_set.holds rel set);
  Alcotest.(check bool) "closed (catch-all)" true (Pc_set.closed_over rel set)

let test_generate_correlated_attrs () =
  let rng = Pc_util.Rng.create 3 in
  let rows =
    List.init 300 (fun i ->
        let utc = float_of_int i in
        (* price strongly correlated with utc, not with noise *)
        row utc (if i mod 3 = 0 then "X" else "Y") (utc +. Pc_util.Rng.uniform rng ~lo:0. ~hi:1.))
  in
  let rel = Pc_data.Relation.create schema rows in
  let top =
    Generate.correlated_attrs rel ~agg:"price" ~candidates:[ "utc"; "branch" ] ~k:1
  in
  Alcotest.(check (list string)) "utc most correlated" [ "utc" ] top

let test_advisor () =
  (* v is a pure function of t (plus tiny noise) and independent of a
     useless uniform attribute u: the advisor must pick t *)
  let adv_schema =
    Pc_data.Schema.of_names
      [
        ("t", Pc_data.Schema.Numeric);
        ("u", Pc_data.Schema.Numeric);
        ("v", Pc_data.Schema.Numeric);
      ]
  in
  let rng = Pc_util.Rng.create 5 in
  let rel =
    Pc_data.Relation.create adv_schema
      (List.init 600 (fun _ ->
           let t = Pc_util.Rng.uniform rng ~lo:0. ~hi:100. in
           [|
             V.Num t;
             V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.);
             V.Num ((2. *. t) +. Pc_util.Rng.uniform rng ~lo:0. ~hi:1.);
           |]))
  in
  let queries =
    List.init 30 (fun i ->
        let lo = float_of_int (i mod 10) *. 8. in
        Q.sum ~where_:[ Atom.between "t" lo (lo +. 20.) ] "v")
  in
  let winner = Advisor.best ~max_attrs:1 rel ~candidates:[ "t"; "u" ] ~queries in
  Alcotest.(check (list string)) "picks the correlated attribute" [ "t" ] winner;
  let ranked = Advisor.rank ~max_attrs:2 rel ~candidates:[ "t"; "u" ] ~queries in
  Alcotest.(check int) "three scored subsets" 3 (List.length ranked);
  Alcotest.(check bool) "scores sorted ascending" true
    (let rec sorted = function
       | a :: (b :: _ as rest) ->
           a.Advisor.median_over_estimation <= b.Advisor.median_over_estimation
           && sorted rest
       | _ -> true
     in
     sorted ranked);
  Alcotest.(check bool) "no candidates rejected" true
    (try
       ignore (Advisor.rank rel ~candidates:[] ~queries);
       false
     with Invalid_argument _ -> true)

let test_noise () =
  let rng = Pc_util.Rng.create 4 in
  let pcs = [ chicago_pc ] in
  let noisy = Noise.corrupt_values rng ~sigma:[ ("price", 10.) ] pcs in
  Alcotest.(check int) "same count" 1 (List.length noisy);
  let pc = List.hd noisy in
  Alcotest.(check bool) "interval still valid" true
    (I.lo_float (Pc.value_interval pc "price") <= I.hi_float (Pc.value_interval pc "price"));
  (* zero noise is identity *)
  let same = Noise.corrupt_values rng ~sigma:[ ("price", 0.) ] pcs in
  Alcotest.(check bool) "zero noise unchanged" true
    (I.equal
       (Pc.value_interval (List.hd same) "price")
       (Pc.value_interval chicago_pc "price"))

(* ------------------- end-to-end soundness property ------------------ *)

(* Build a random "missing" relation, summarize it with PCs that hold by
   construction, fire random queries, and check the hard range contains
   the true answer. This is the paper's central guarantee. *)

let sound_schema =
  Pc_data.Schema.of_names
    [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]

let random_missing_relation rng n =
  let rows =
    List.init n (fun _ ->
        let t = Pc_util.Rng.uniform rng ~lo:0. ~hi:100. in
        let v =
          match Pc_util.Rng.int rng 3 with
          | 0 -> Pc_util.Rng.uniform rng ~lo:(-50.) ~hi:50.
          | 1 -> t *. 2.
          | _ -> Pc_util.Rng.pareto rng ~scale:1. ~shape:1.5
        in
        [| V.Num t; V.Num v |])
  in
  Pc_data.Relation.create sound_schema rows

let random_query rng =
  let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:90. in
  let w = Pc_util.Rng.uniform rng ~lo:5. ~hi:50. in
  let where_ = [ Atom.between "t" lo (lo +. w) ] in
  match Pc_util.Rng.int rng 5 with
  | 0 -> Q.count ~where_ ()
  | 1 -> Q.sum ~where_ "v"
  | 2 -> Q.avg ~where_ "v"
  | 3 -> Q.min_ ~where_ "v"
  | _ -> Q.max_ ~where_ "v"

let soundness_check ~make_pcs seed =
  let rng = Pc_util.Rng.create seed in
  let missing = random_missing_relation rng (30 + Pc_util.Rng.int rng 100) in
  let pcs = make_pcs rng missing in
  let set = Pc_set.make pcs in
  if not (Pc_set.holds missing set) then
    QCheck.Test.fail_report "generated PCs do not hold";
  let query = random_query rng in
  let truth = Q.eval missing query in
  match (Bounds.bound set query, truth) with
  | Bounds.Infeasible, _ -> QCheck.Test.fail_report "infeasible on satisfiable data"
  | Bounds.Empty, None -> true
  | Bounds.Empty, Some v ->
      QCheck.Test.fail_reportf "Empty but truth = %g (%s)" v (Q.to_string query)
  | Bounds.Range _, None -> true (* a wider range than needed is sound *)
  | Bounds.Range r, Some v ->
      if Range.contains r v then true
      else
        QCheck.Test.fail_reportf "range %s misses truth %g for %s"
          (Range.to_string r) v (Q.to_string query)

let prop_sound_corr =
  QCheck.Test.make ~name:"bounds contain truth (Corr-PC partitions)" ~count:120
    QCheck.(int_bound 100_000)
    (soundness_check ~make_pcs:(fun _rng missing ->
         Generate.corr_partition missing ~attrs:[ "t" ] ~n:8 ()))

let prop_sound_rand =
  QCheck.Test.make ~name:"bounds contain truth (random overlapping PCs)" ~count:120
    QCheck.(int_bound 100_000)
    (soundness_check ~make_pcs:(fun rng missing ->
         Generate.rand_pcs rng missing ~attrs:[ "t" ] ~n:7 ()))

let prop_greedy_matches_general =
  QCheck.Test.make ~name:"greedy equals general on disjoint sets" ~count:60
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let missing = random_missing_relation rng 60 in
      let pcs = Generate.corr_partition missing ~attrs:[ "t" ] ~n:6 () in
      let set = Pc_set.make pcs in
      let query = random_query rng in
      let greedy = Bounds.bound set query in
      let general =
        Bounds.bound
          ~opts:{ Bounds.default_opts with Bounds.use_greedy = false }
          set query
      in
      match (greedy, general) with
      | Bounds.Range a, Bounds.Range b ->
          Float.abs (a.Range.lo -. b.Range.lo) < 1e-3 *. Float.max 1. (Float.abs b.Range.lo)
          && Float.abs (a.Range.hi -. b.Range.hi) < 1e-3 *. Float.max 1. (Float.abs b.Range.hi)
      | Bounds.Empty, Bounds.Empty -> true
      | Bounds.Infeasible, Bounds.Infeasible -> true
      | _, _ -> false)

let prop_combined_sound =
  (* bound_with_certain must contain the full-relation truth *)
  QCheck.Test.make ~name:"combined bounds contain the full truth" ~count:120
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let full = random_missing_relation rng (60 + Pc_util.Rng.int rng 120) in
      let split =
        Pc_synth.Missing.top_values full ~attr:"v"
          ~fraction:(Pc_util.Rng.uniform rng ~lo:0.2 ~hi:0.8)
      in
      let observed = split.Pc_synth.Missing.observed in
      let missing = split.Pc_synth.Missing.missing in
      if Pc_data.Relation.is_empty missing then true
      else begin
        let set =
          Pc_set.make (Generate.corr_partition missing ~attrs:[ "t" ] ~n:6 ())
        in
        let query = random_query rng in
        match
          (Bounds.bound_with_certain set ~certain:observed query, Q.eval full query)
        with
        | Bounds.Infeasible, _ -> false
        | Bounds.Empty, None -> true
        | Bounds.Empty, Some _ -> false
        | Bounds.Range _, None -> true
        | Bounds.Range r, Some truth -> Range.contains r truth
      end)

let group_schema =
  Pc_data.Schema.of_names
    [
      ("t", Pc_data.Schema.Numeric);
      ("g", Pc_data.Schema.Categorical);
      ("v", Pc_data.Schema.Numeric);
    ]

let prop_group_by_sound =
  (* each per-group range contains the per-group truth of the full data *)
  QCheck.Test.make ~name:"group-by ranges contain per-group truths" ~count:80
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let groups = [| "a"; "b"; "c" |] in
      let full =
        Pc_data.Relation.create group_schema
          (List.init (60 + Pc_util.Rng.int rng 120) (fun _ ->
               [|
                 V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.);
                 V.Str groups.(Pc_util.Rng.int rng 3);
                 V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:50.);
               |]))
      in
      let split = Pc_synth.Missing.top_values full ~attr:"v" ~fraction:0.5 in
      let observed = split.Pc_synth.Missing.observed in
      let missing = split.Pc_synth.Missing.missing in
      let set =
        Pc_set.make (Generate.corr_partition missing ~attrs:[ "g" ] ~n:3 ())
      in
      let query = Q.sum "v" in
      let result = Group_by.bound set ~certain:observed ~by:"g" query in
      List.for_all
        (fun (key, answer) ->
          let key_s = Pc_data.Value.as_str key in
          let truth =
            Q.eval full
              { query with Q.where_ = [ Atom.cat_eq "g" key_s ] }
          in
          match (answer, truth) with
          | Bounds.Range r, Some v -> Range.contains r v
          | Bounds.Range _, None -> true
          | Bounds.Empty, None -> true
          | Bounds.Empty, Some v -> v = 0.
          | Bounds.Infeasible, _ -> false)
        result.Group_by.groups)

let prop_tightness_sum =
  (* On disjoint partitions derived from data with freq (0, count) and
     exact value ranges, the SUM upper bound is attained by the instance
     that pins every row at its bucket max — so the bound must not exceed
     count * max over buckets. This checks bounds are tight, not just
     sound. *)
  QCheck.Test.make ~name:"disjoint SUM bound is attainable" ~count:80
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let missing = random_missing_relation rng 50 in
      let pcs = Generate.corr_partition missing ~attrs:[ "t" ] ~n:5 () in
      let set = Pc_set.make pcs in
      let expected_hi =
        List.fold_left
          (fun acc (pc : Pc.t) ->
            let hi = I.hi_float (Pc.value_interval pc "v") in
            let contrib =
              if hi >= 0. then float_of_int pc.Pc.freq_hi *. hi else 0.
            in
            acc +. contrib)
          0. pcs
      in
      match Bounds.bound set (Q.sum "v") with
      | Bounds.Range r -> Float.abs (r.Range.hi -. expected_hi) < 1e-6 *. Float.max 1. expected_hi
      | _ -> false)

let () =
  Alcotest.run "pc_core"
    [
      ( "pc",
        [
          tc "validation" `Quick test_pc_validation;
          tc "holds/violations" `Quick test_pc_holds;
          tc "value intervals" `Quick test_pc_value_interval;
        ] );
      ("pc_set", [ tc "closure and disjointness" `Quick test_set_closure_disjoint ]);
      ( "cells",
        [
          tc "paper example" `Quick test_cells_paper_example;
          tc "strategies agree" `Quick test_cells_strategies_agree;
          QCheck_alcotest.to_alcotest prop_strategies_agree;
          QCheck_alcotest.to_alcotest prop_early_stop_superset;
          QCheck_alcotest.to_alcotest prop_rewrite_fewer_calls;
        ] );
      ( "bounds",
        [
          tc "paper disjoint example" `Quick test_paper_disjoint_example;
          tc "paper overlapping example" `Quick test_paper_overlapping_example;
          tc "count" `Quick test_count_bounds;
          tc "query pushdown" `Quick test_query_pushdown;
          tc "non-overlapping query" `Quick test_non_overlapping_query;
          tc "infeasible systems" `Quick test_infeasible;
          tc "most-restrictive reconciliation" `Quick test_conflict_most_restrictive;
          tc "min/max" `Quick test_min_max;
          tc "avg" `Quick test_avg;
          tc "with certain partition" `Quick test_bound_with_certain;
        ] );
      ( "generate",
        [
          tc "corr partition" `Quick test_generate_corr_partition;
          tc "rand pcs" `Quick test_generate_rand_pcs;
          tc "correlated attrs" `Quick test_generate_correlated_attrs;
        ] );
      ("advisor", [ tc "attribute selection" `Quick test_advisor ]);
      ("noise", [ tc "corruption" `Quick test_noise ]);
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_sound_corr;
          QCheck_alcotest.to_alcotest prop_sound_rand;
          QCheck_alcotest.to_alcotest prop_greedy_matches_general;
          QCheck_alcotest.to_alcotest prop_combined_sound;
          QCheck_alcotest.to_alcotest prop_group_by_sound;
          QCheck_alcotest.to_alcotest prop_tightness_sum;
        ] );
    ]
