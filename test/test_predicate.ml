open Pc_predicate
module I = Pc_interval.Interval
module V = Pc_data.Value

let tc = Alcotest.test_case

let schema =
  Pc_data.Schema.of_names
    [
      ("utc", Pc_data.Schema.Numeric);
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let row utc branch price = [| V.Num utc; V.Str branch; V.Num price |]

let test_atom_eval () =
  let r = row 5. "Chicago" 10. in
  Alcotest.(check bool) "range in" true (Atom.eval schema (Atom.between "utc" 0. 10.) r);
  Alcotest.(check bool) "range out" false (Atom.eval schema (Atom.between "utc" 6. 10.) r);
  Alcotest.(check bool) "cat eq" true (Atom.eval schema (Atom.cat_eq "branch" "Chicago") r);
  Alcotest.(check bool) "cat neq" false
    (Atom.eval schema (Atom.Cat_neq ("branch", "Chicago")) r);
  Alcotest.(check bool) "cat in" true
    (Atom.eval schema (Atom.Cat_in ("branch", [ "NY"; "Chicago" ])) r);
  Alcotest.(check bool) "cat not in" false
    (Atom.eval schema (Atom.Cat_not_in ("branch", [ "Chicago" ])) r)

let test_atom_negate_semantics () =
  let atoms =
    [
      Atom.between "utc" 2. 8.;
      Atom.greater_than "price" 5.;
      Atom.cat_eq "branch" "Chicago";
      Atom.Cat_in ("branch", [ "A"; "B" ]);
    ]
  in
  let rows =
    [ row 1. "Chicago" 4.; row 5. "A" 5.; row 8. "B" 6.; row 9. "X" 100. ]
  in
  List.iter
    (fun atom ->
      List.iter
        (fun r ->
          let direct = Atom.eval schema atom r in
          let negated = List.exists (fun a -> Atom.eval schema a r) (Atom.negate atom) in
          Alcotest.(check bool)
            (Printf.sprintf "negation flips %s" (Atom.to_string atom))
            (not direct) negated)
        rows)
    atoms

let test_box_num () =
  let box =
    Box.add_pred Box.top [ Atom.between "utc" 0. 10.; Atom.at_least "utc" 5. ]
  in
  match box with
  | None -> Alcotest.fail "expected nonempty"
  | Some b ->
      let iv = Box.num_interval b "utc" in
      Alcotest.(check (float 0.)) "lo" 5. (I.lo_float iv);
      Alcotest.(check (float 0.)) "hi" 10. (I.hi_float iv);
      Alcotest.(check bool) "conflict is empty" true
        (Box.add_atom b (Atom.less_than "utc" 5.) = None)

let test_box_cat () =
  let b = Option.get (Box.add_atom Box.top (Atom.Cat_in ("branch", [ "A"; "B" ]))) in
  let b = Option.get (Box.add_atom b (Atom.Cat_neq ("branch", "A"))) in
  (match Box.cat_constraint b "branch" with
  | Some (Box.In [ "B" ]) -> ()
  | _ -> Alcotest.fail "expected {B}");
  Alcotest.(check bool) "excluding B empties" true
    (Box.add_atom b (Atom.Cat_neq ("branch", "B")) = None)

let test_box_universe () =
  let b = Box.with_universe [ ("branch", [ "A"; "B" ]) ] in
  let b = Option.get (Box.add_atom b (Atom.Cat_neq ("branch", "A"))) in
  Alcotest.(check bool) "excluding whole universe empties" true
    (Box.add_atom b (Atom.Cat_neq ("branch", "B")) = None);
  (* without a universe the same exclusions stay satisfiable *)
  let open_box = Option.get (Box.add_atom Box.top (Atom.Cat_neq ("branch", "A"))) in
  Alcotest.(check bool) "open universe survives" true
    (Option.is_some (Box.add_atom open_box (Atom.Cat_neq ("branch", "B"))))

let test_box_kind_conflict () =
  let b = Option.get (Box.add_atom Box.top (Atom.between "utc" 0. 1.)) in
  Alcotest.check_raises "mixed kinds"
    (Invalid_argument "Box: attribute utc used as both kinds") (fun () ->
      ignore (Box.add_atom b (Atom.cat_eq "utc" "x")))

let test_box_witness () =
  let b =
    Option.get
      (Box.add_pred Box.top
         [ Atom.between "price" 2. 4.; Atom.Cat_not_in ("branch", [ "A" ]) ])
  in
  let w = Box.witness b in
  let price = List.assoc "price" w and branch = List.assoc "branch" w in
  Alcotest.(check bool) "price in range" true
    (V.as_num price >= 2. && V.as_num price <= 4.);
  Alcotest.(check bool) "branch avoids exclusion" true (V.as_str branch <> "A")

let test_pred_eval () =
  let p = Pred.conj [ Atom.between "utc" 0. 10.; Atom.cat_eq "branch" "Chicago" ] in
  Alcotest.(check bool) "matches" true (Pred.eval schema p (row 5. "Chicago" 1.));
  Alcotest.(check bool) "branch mismatch" false (Pred.eval schema p (row 5. "NY" 1.));
  Alcotest.(check bool) "tautology" true (Pred.eval schema Pred.tt (row 0. "X" 0.));
  Alcotest.(check (list string)) "attrs" [ "branch"; "utc" ] (Pred.attrs p)

let test_pred_satisfiable () =
  Alcotest.(check bool) "consistent" true
    (Pred.satisfiable [ Atom.between "utc" 0. 10.; Atom.at_least "utc" 3. ]);
  Alcotest.(check bool) "inconsistent" false
    (Pred.satisfiable [ Atom.between "utc" 0. 1.; Atom.at_least "utc" 3. ])

let test_sat_basic () =
  Sat.reset_calls ();
  (* (utc in [0,10]) AND (NOT utc in [2,8]) is satisfiable *)
  let cnf =
    Cnf.conj
      (Cnf.of_pred [ Atom.between "utc" 0. 10. ])
      (Cnf.of_neg_pred [ Atom.between "utc" 2. 8. ])
  in
  Alcotest.(check bool) "sat" true (Sat.check cnf);
  (* (utc in [2,8]) AND (NOT utc in [0,10]) is unsatisfiable *)
  let cnf2 =
    Cnf.conj
      (Cnf.of_pred [ Atom.between "utc" 2. 8. ])
      (Cnf.of_neg_pred [ Atom.between "utc" 0. 10. ])
  in
  Alcotest.(check bool) "unsat" false (Sat.check cnf2);
  Alcotest.(check int) "calls counted" 2 (Sat.calls ())

let test_sat_multi_clause () =
  (* utc in [0,10] ∧ ¬(utc in [0,5] ∧ price in [0,5]) ∧ ¬(utc in [5,10] ∧ price in [5,9])
     satisfiable e.g. utc=3, price=7 *)
  let cnf =
    Cnf.of_pred [ Atom.between "utc" 0. 10.; Atom.between "price" 0. 9. ]
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "utc" 0. 5.; Atom.between "price" 0. 5. ])
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "utc" 5. 10.; Atom.between "price" 5. 9. ])
  in
  (match Sat.solve cnf with
  | Some box ->
      let w = Box.witness box in
      let get a = V.as_num (List.assoc a w) in
      let utc = get "utc" and price = get "price" in
      Alcotest.(check bool) "witness satisfies cnf" true
        (Cnf.eval schema cnf (row utc "x" price))
  | None -> Alcotest.fail "expected satisfiable");
  (* covering the whole box with the two negated regions -> unsat *)
  let cnf_unsat =
    Cnf.of_pred [ Atom.between "utc" 0. 10. ]
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "utc" 0. 5. ])
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "utc" 5. 10. ])
  in
  Alcotest.(check bool) "covered is unsat" false (Sat.check cnf_unsat)

let test_implies_box () =
  let box = Option.get (Box.of_pred [ Atom.between "utc" 3. 4. ]) in
  Alcotest.(check bool) "implied range" true
    (Pred.implies_box box [ Atom.between "utc" 0. 10. ]);
  Alcotest.(check bool) "not implied" false
    (Pred.implies_box box [ Atom.between "utc" 3.5 10. ]);
  Alcotest.(check bool) "tautology implied" true (Pred.implies_box box Pred.tt)

(* --- properties: SAT solver agrees with brute-force evaluation --- *)

let atom_gen attr_pool =
  QCheck.Gen.(
    let* attr = oneofl attr_pool in
    let* lo = float_bound_inclusive 10. in
    let* w = float_bound_inclusive 5. in
    return (Atom.between attr lo (lo +. w)))

let pred_gen =
  QCheck.Gen.(list_size (1 -- 3) (atom_gen [ "x"; "y" ]))

let cnf_gen =
  QCheck.Gen.(
    let* pos = pred_gen in
    let* negs = list_size (0 -- 3) pred_gen in
    return
      (List.fold_left
         (fun acc p -> Cnf.conj acc (Cnf.of_neg_pred p))
         (Cnf.of_pred pos) negs))

let grid_schema =
  Pc_data.Schema.of_names [ ("x", Pc_data.Schema.Numeric); ("y", Pc_data.Schema.Numeric) ]

let prop_sat_complete =
  (* If a grid point satisfies the CNF, the solver must report SAT. *)
  QCheck.Test.make ~name:"solver finds satisfiable grids" ~count:300
    (QCheck.make cnf_gen) (fun cnf ->
      let grid_hit = ref false in
      let steps = 31 in
      for i = 0 to steps - 1 do
        for j = 0 to steps - 1 do
          let x = 15.5 *. float_of_int i /. float_of_int (steps - 1) in
          let y = 15.5 *. float_of_int j /. float_of_int (steps - 1) in
          if Cnf.eval grid_schema cnf [| V.Num x; V.Num y |] then grid_hit := true
        done
      done;
      (* solver SAT must be implied by a grid hit (soundness direction:
         grid hit -> SAT). The converse can fail because the grid is
         coarse, so we only check the implication. *)
      (not !grid_hit) || Sat.check cnf)

let prop_sat_witness =
  QCheck.Test.make ~name:"witness satisfies the formula" ~count:300
    (QCheck.make cnf_gen) (fun cnf ->
      match Sat.solve cnf with
      | None -> true
      | Some box ->
          let w = Box.witness box in
          let get a = try V.as_num (List.assoc a w) with Not_found -> 0. in
          Cnf.eval grid_schema cnf [| V.Num (get "x"); V.Num (get "y") |])

let () =
  Alcotest.run "pc_predicate"
    [
      ( "atom",
        [
          tc "eval" `Quick test_atom_eval;
          tc "negation semantics" `Quick test_atom_negate_semantics;
        ] );
      ( "box",
        [
          tc "numeric" `Quick test_box_num;
          tc "categorical" `Quick test_box_cat;
          tc "universe" `Quick test_box_universe;
          tc "kind conflict" `Quick test_box_kind_conflict;
          tc "witness" `Quick test_box_witness;
        ] );
      ( "pred",
        [
          tc "eval" `Quick test_pred_eval;
          tc "satisfiable" `Quick test_pred_satisfiable;
          tc "implies_box" `Quick test_implies_box;
        ] );
      ( "sat",
        [
          tc "basic" `Quick test_sat_basic;
          tc "multi-clause" `Quick test_sat_multi_clause;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sat_complete; prop_sat_witness ] );
    ]
