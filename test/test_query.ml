open Pc_query
module V = Pc_data.Value
module Atom = Pc_predicate.Atom

let tc = Alcotest.test_case

let schema =
  Pc_data.Schema.of_names
    [
      ("utc", Pc_data.Schema.Numeric);
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let row utc branch price = [| V.Num utc; V.Str branch; V.Num price |]

let sales =
  Pc_data.Relation.create schema
    [
      row 1. "Chicago" 10.;
      row 2. "Chicago" 20.;
      row 3. "NY" 30.;
      row 4. "NY" 40.;
      row 5. "Trenton" 50.;
    ]

let check_eval name expected q =
  match Query.eval sales q with
  | Some v -> Alcotest.(check (float 1e-9)) name expected v
  | None -> Alcotest.failf "%s: unexpected empty" name

let test_aggregates () =
  check_eval "count" 5. (Query.count ());
  check_eval "sum" 150. (Query.sum "price");
  check_eval "avg" 30. (Query.avg "price");
  check_eval "min" 10. (Query.min_ "price");
  check_eval "max" 50. (Query.max_ "price")

let test_where () =
  let where_ = [ Atom.cat_eq "branch" "Chicago" ] in
  check_eval "filtered sum" 30. (Query.sum ~where_ "price");
  check_eval "filtered count" 2. (Query.count ~where_ ());
  let where_ = [ Atom.between "utc" 2. 4. ] in
  check_eval "range avg" 30. (Query.avg ~where_ "price")

let test_empty_selection () =
  let where_ = [ Atom.cat_eq "branch" "Nowhere" ] in
  check_eval "empty count" 0. (Query.count ~where_ ());
  check_eval "empty sum" 0. (Query.sum ~where_ "price");
  Alcotest.(check bool) "empty avg none" true
    (Query.eval sales (Query.avg ~where_ "price") = None);
  Alcotest.(check bool) "empty min none" true
    (Query.eval sales (Query.min_ ~where_ "price") = None)

let test_group_by () =
  let results = Query.eval_group_by sales (Query.sum "price") "branch" in
  Alcotest.(check int) "three groups" 3 (List.length results);
  let chicago = List.assoc (V.Str "Chicago") results in
  Alcotest.(check (float 0.)) "chicago sum" 30. (Option.get chicago);
  (* group-by respects the outer predicate *)
  let filtered =
    Query.eval_group_by sales (Query.count ~where_:[ Atom.at_least "utc" 3. ] ()) "branch"
  in
  Alcotest.(check int) "filtered groups" 2 (List.length filtered)

let test_agg_attr_and_pp () =
  Alcotest.(check (option string)) "sum attr" (Some "price")
    (Query.agg_attr (Query.sum "price"));
  Alcotest.(check (option string)) "count attr" None (Query.agg_attr (Query.count ()));
  Alcotest.(check string) "pp" "SELECT COUNT(*) WHERE TRUE"
    (Query.to_string (Query.count ()))

let prop_sum_matches_manual =
  QCheck.Test.make ~name:"query SUM equals manual fold" ~count:200
    QCheck.(list (pair (float_bound_inclusive 10.) (float_bound_inclusive 100.)))
    (fun rows ->
      let schema =
        Pc_data.Schema.of_names
          [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]
      in
      let rel =
        Pc_data.Relation.create schema
          (List.map (fun (t, v) -> [| V.Num t; V.Num v |]) rows)
      in
      let where_ = [ Atom.between "t" 2. 7. ] in
      let expected =
        List.fold_left
          (fun acc (t, v) -> if t >= 2. && t <= 7. then acc +. v else acc)
          0. rows
      in
      match Query.eval rel (Query.sum ~where_ "v") with
      | Some s -> Float.abs (s -. expected) < 1e-6
      | None -> false)

let () =
  Alcotest.run "pc_query"
    [
      ( "query",
        [
          tc "aggregates" `Quick test_aggregates;
          tc "where" `Quick test_where;
          tc "empty selection" `Quick test_empty_selection;
          tc "group by" `Quick test_group_by;
          tc "agg_attr/pp" `Quick test_agg_attr_and_pp;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_sum_matches_manual ]);
    ]
