(* The bound server: protocol, per-request crash isolation, admission
   control, graceful drain, and the chaos acceptance test (faults armed,
   8 concurrent clients, torn sockets — every well-formed request is
   answered soundly or with a structured error; the server never dies;
   the drain leaves valid artifacts). *)

module S = Pc_server.Server
module A = Pc_server.Admission
module C = Pc_server.Client
module B = Pc_budget.Budget
module F = Pc_fault.Fault
module J = Pc_obs.Json

let tc = Alcotest.test_case

let constraints_text =
  "constraint chicago_cap:\n\
  \  branch = 'Chicago' => price in [0.0, 149.99], count [0, 5];\n\
   constraint newyork_cap:\n\
  \  branch = 'New York' => price in [0.0, 100.0], count [0, 10];\n"

let sum_query = "SELECT SUM(price) WHERE branch = 'Chicago'"

let start ?(cfg = S.default_config) () =
  let srv = S.create { cfg with S.port = 0 } in
  (match
     S.load_dataset srv ~name:"default" ~constraints:constraints_text ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (srv, Thread.create S.run srv)

let stop (srv, th) =
  S.initiate_drain srv;
  Thread.join th

let connect srv = C.connect ~host:"127.0.0.1" ~port:(S.port srv)

let parse reply =
  match J.parse reply with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "bad reply %S: %s" reply e)

let req c line =
  match C.request c line with
  | Some reply -> parse reply
  | None -> Alcotest.fail "connection closed instead of replying"

let ok v =
  match J.member "ok" v with
  | Some (J.Bool b) -> b
  | _ -> Alcotest.fail "reply without \"ok\""

let str v k = Option.bind (J.member k v) J.to_str
let num v k = Option.bind (J.member k v) J.to_num

let err_code v =
  match Option.bind (J.member "error" v) (fun e -> str e "code") with
  | Some c -> c
  | None -> Alcotest.fail "error reply without code"

(* ------------------------------ protocol ------------------------------ *)

let test_session () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  let v = req c {|{"op":"ping"}|} in
  Alcotest.(check bool) "pong ok" true (ok v);
  let v = req c (Printf.sprintf {|{"op":"bound","query":%s}|} (J.to_string (J.Str sum_query))) in
  Alcotest.(check bool) "bound ok" true (ok v);
  Alcotest.(check (option string)) "exact" (Some "exact") (str v "provenance");
  (match J.member "answer" v with
  | Some a ->
      Alcotest.(check (option string)) "range" (Some "range") (str a "kind");
      (match (num a "lo", num a "hi") with
      | Some lo, Some hi -> Alcotest.(check bool) "lo<=hi" true (lo <= hi)
      | _ -> Alcotest.fail "range without lo/hi")
  | None -> Alcotest.fail "no answer");
  let v = req c {|{"op":"stats"}|} in
  Alcotest.(check bool) "stats ok" true (ok v);
  Alcotest.(check bool) "requests counted" true
    (match num v "requests" with Some n -> n >= 2. | None -> false);
  C.close c;
  stop s

let test_crash_isolation () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  (* a barrage of garbage, then a real request on the same connection *)
  let v = req c "this is not json" in
  Alcotest.(check bool) "garbage rejected" false (ok v);
  Alcotest.(check string) "bad-json" "bad-json" (err_code v);
  let v = req c {|{"op":"frobnicate"}|} in
  Alcotest.(check string) "unknown-op" "unknown-op" (err_code v);
  let v = req c {|{"op":"bound"}|} in
  Alcotest.(check string) "missing field" "bad-request" (err_code v);
  let v = req c {|{"op":"bound","query":"SELECT BOGUS(*)"}|} in
  Alcotest.(check string) "query parse error" "parse-error" (err_code v);
  let v = req c {|{"op":"bound","query":"SELECT COUNT(*)","dataset":"nope"}|} in
  Alcotest.(check string) "unknown dataset" "unknown-dataset" (err_code v);
  let v = req c {|{"op":"load","name":"d2","constraints":"syntax error!"}|} in
  Alcotest.(check string) "constraint parse error" "parse-error" (err_code v);
  let v = req c (Printf.sprintf {|{"op":"bound","query":%s}|} (J.to_string (J.Str sum_query))) in
  Alcotest.(check bool) "still serving after the barrage" true (ok v);
  C.close c;
  stop s

let test_load_op () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  let line =
    J.to_string
      (J.Obj
         [
           ("op", J.Str "load");
           ("name", J.Str "second");
           ("constraints", J.Str constraints_text);
         ])
  in
  let v = req c line in
  Alcotest.(check bool) "load ok" true (ok v);
  Alcotest.(check (option (float 0.))) "two constraints" (Some 2.)
    (num v "constraints");
  let v =
    req c {|{"op":"bound","dataset":"second","query":"SELECT COUNT(*)"}|}
  in
  Alcotest.(check bool) "bound on new dataset" true (ok v);
  C.close c;
  stop s

let test_torn_socket_isolated () =
  let ((srv, _) as s) = start () in
  (* half a request, no newline, then vanish *)
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", S.port srv));
  let half = {|{"op":"pi|} in
  ignore (Unix.write_substring fd half 0 (String.length half));
  Unix.close fd;
  (* the server shrugs; a well-behaved client is unaffected *)
  let c = connect srv in
  Alcotest.(check bool) "still alive" true (ok (req c {|{"op":"ping"}|}));
  C.close c;
  stop s

(* --------------------------- concurrency ------------------------------ *)

let test_concurrent_clients () =
  let ((srv, _) as s) = start () in
  let failures = Atomic.make 0 in
  let worker _ =
    Thread.create
      (fun () ->
        let c = connect srv in
        for _ = 1 to 5 do
          let line =
            Printf.sprintf {|{"op":"bound","query":%s}|}
              (J.to_string (J.Str sum_query))
          in
          match C.request c line with
          | Some reply when ok (parse reply) -> ()
          | _ -> Atomic.incr failures
        done;
        C.close c)
      ()
  in
  let threads = List.init 8 worker in
  List.iter Thread.join threads;
  Alcotest.(check int) "all 40 requests answered" 0 (Atomic.get failures);
  stop s

(* ------------------------- admission control -------------------------- *)

let test_admission_unit () =
  let p = A.policy ~max_inflight:8 () in
  Alcotest.(check bool) "idle is full" true (A.level_for p ~inflight:0 = A.Full);
  Alcotest.(check bool) "saturated is floor" true
    (A.level_for p ~inflight:8 = A.Floor_only);
  (* monotone: more load never yields a cheaper level *)
  let rec mono i prev =
    if i > 10 then ()
    else
      let l = A.level_order (A.level_for p ~inflight:i) in
      Alcotest.(check bool) "monotone" true (l >= prev);
      mono (i + 1) l
  in
  mono 0 0;
  (* crush only tightens: an operator cap below the crush survives *)
  let base = B.spec ~sat_calls:0 ~nodes:3 () in
  let crushed = A.crush base A.Early_only in
  Alcotest.(check (option int)) "nodes crushed" (Some 0) crushed.B.max_nodes;
  Alcotest.(check (option int)) "sat cap kept" (Some 0) crushed.B.max_sat_calls

let test_admission_p99_slo () =
  let no_slo = A.policy ~max_inflight:8 () in
  Alcotest.(check bool) "no SLO: any p99 is full" true
    (A.level_for_p99 no_slo ~p99_ms:1e9 = A.Full);
  let p = A.policy ~p99_slo_ms:10. ~max_inflight:8 () in
  let lvl ms = A.level_for_p99 p ~p99_ms:ms in
  Alcotest.(check bool) "within SLO" true (lvl 5. = A.Full);
  Alcotest.(check bool) "at SLO" true (lvl 10. = A.Full);
  Alcotest.(check bool) "one doubling" true (lvl 15. = A.Dual_only);
  Alcotest.(check bool) "two doublings" true (lvl 35. = A.Early_only);
  Alcotest.(check bool) "meltdown" true (lvl 100. = A.Floor_only);
  (* the latency dimension is monotone too *)
  let rec mono ms prev =
    if ms > 120. then ()
    else begin
      let l = A.level_order (lvl ms) in
      Alcotest.(check bool) "p99 monotone" true (l >= prev);
      mono (ms +. 7.) l
    end
  in
  mono 0. 0;
  (* combining dimensions: the worse one wins, in both orders *)
  Alcotest.(check bool) "combine worse right" true
    (A.combine A.Full A.Early_only = A.Early_only);
  Alcotest.(check bool) "combine worse left" true
    (A.combine A.Floor_only A.Dual_only = A.Floor_only);
  Alcotest.(check bool) "combine equal" true
    (A.combine A.Full A.Full = A.Full)

let test_overload_degrades () =
  (* thresholds of zero: every request lands on the trivial floor. The
     dataset must be overlapping — a disjoint set takes the budget-free
     O(n) greedy path, which a floored budget rightly leaves exact. *)
  let overlapping =
    "constraint a: branch = 'Chicago' => price in [0.0, 100.0], count [0, 5];\n\
     constraint b: branch = 'Chicago' => price in [0.0, 150.0], count [2, 10];\n"
  in
  let cfg =
    {
      S.default_config with
      S.policy =
        {
          A.full_below = 0;
          A.dual_below = 0;
          A.early_below = 0;
          A.p99_slo_ms = None;
        };
    }
  in
  let ((srv, _) as s) = start ~cfg () in
  (match S.load_dataset srv ~name:"ov" ~constraints:overlapping () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let c = connect srv in
  let v = req c {|{"op":"bound","dataset":"ov","query":"SELECT COUNT(*)"}|} in
  Alcotest.(check bool) "still answered" true (ok v);
  Alcotest.(check (option string)) "admission reported" (Some "floor-only")
    (str v "admission");
  Alcotest.(check (option string)) "floor provenance" (Some "trivial")
    (str v "provenance");
  (match J.member "degraded" v with
  | Some (J.Bool b) -> Alcotest.(check bool) "marked degraded" true b
  | _ -> Alcotest.fail "no degraded flag");
  C.close c;
  stop s

(* ------------------------------- cache -------------------------------- *)

(* Counter.make dedups by name, so these read the cache's live global
   counters. The registry is process-wide and other tests also issue
   bound requests, so assertions are on deltas, never absolutes. *)
let cache_hits () = Pc_obs.Registry.Counter.(get (make "cache.hits"))
let cache_misses () = Pc_obs.Registry.Counter.(get (make "cache.misses"))

let raw_req c line =
  match C.request c line with
  | Some reply -> reply
  | None -> Alcotest.fail "connection closed instead of replying"

let test_cache_replay_byte_identical () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  let line =
    Printf.sprintf {|{"op":"bound","query":%s}|} (J.to_string (J.Str sum_query))
  in
  let h0 = cache_hits () and m0 = cache_misses () in
  let r1 = raw_req c line in
  let r2 = raw_req c line in
  (* the cache stores the serialized reply, so a hit is the same bytes,
     not merely the same JSON value *)
  Alcotest.(check string) "replayed reply byte-identical" r1 r2;
  Alcotest.(check bool) "first request missed" true (cache_misses () > m0);
  Alcotest.(check bool) "second request hit" true (cache_hits () > h0);
  let v = parse r2 in
  Alcotest.(check bool) "hit is ok" true (ok v);
  Alcotest.(check (option string)) "hit keeps exact provenance"
    (Some "exact") (str v "provenance");
  C.close c;
  stop s

let test_cache_disabled () =
  let cfg = { S.default_config with S.cache = false } in
  let ((srv, _) as s) = start ~cfg () in
  let c = connect srv in
  let line = {|{"op":"bound","query":"SELECT COUNT(*)"}|} in
  let h0 = cache_hits () and m0 = cache_misses () in
  (* uncached replies re-time stats.elapsed_ms, so byte-equality is a
     cache-hit property only; here just pin that both compute *)
  Alcotest.(check bool) "first computes" true (ok (parse (raw_req c line)));
  Alcotest.(check bool) "repeat computes" true (ok (parse (raw_req c line)));
  Alcotest.(check int) "no hits when disabled" h0 (cache_hits ());
  Alcotest.(check int) "no misses counted either" m0 (cache_misses ());
  C.close c;
  stop s

let test_load_invalidates_cache () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  let load text =
    let line =
      J.to_string
        (J.Obj
           [
             ("op", J.Str "load");
             ("name", J.Str "inv");
             ("constraints", J.Str text);
           ])
    in
    Alcotest.(check bool) "load ok" true (ok (req c line))
  in
  let bound_hi () =
    let v = req c {|{"op":"bound","dataset":"inv","query":"SELECT COUNT(*)"}|} in
    Alcotest.(check bool) "bound ok" true (ok v);
    match Option.bind (J.member "answer" v) (fun a -> num a "hi") with
    | Some hi -> hi
    | None -> Alcotest.fail "no hi in answer"
  in
  load constraints_text;
  Alcotest.(check (float 0.)) "caps 5+10" 15. (bound_hi ());
  ignore (bound_hi ());
  (* warm the entry *)
  let tighter =
    "constraint chicago_cap:\n\
    \  branch = 'Chicago' => price in [0.0, 149.99], count [0, 1];\n\
     constraint newyork_cap:\n\
    \  branch = 'New York' => price in [0.0, 100.0], count [0, 2];\n"
  in
  load tighter;
  let h = cache_hits () in
  (* a stale hit would replay 15; re-load must have dropped the entry *)
  Alcotest.(check (float 0.)) "reloaded caps 1+2" 3. (bound_hi ());
  Alcotest.(check int) "recomputed, not replayed" h (cache_hits ());
  C.close c;
  stop s

(* ------------------------------- drain -------------------------------- *)

let test_drain_flushes_artifacts () =
  let trace = Filename.temp_file "pcda_trace" ".json" in
  let metrics = Filename.temp_file "pcda_metrics" ".json" in
  Pc_obs.Trace.set_enabled true;
  Pc_obs.Registry.set_enabled true;
  let cfg =
    { S.default_config with S.trace_path = Some trace; metrics_path = Some metrics }
  in
  let ((srv, th) as s) = start ~cfg () in
  let c = connect srv in
  ignore (req c (Printf.sprintf {|{"op":"bound","query":%s}|} (J.to_string (J.Str sum_query))));
  (* shutdown over the wire: reply first, then drain *)
  let v = req c {|{"op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown acknowledged" true (ok v);
  Thread.join th;
  Alcotest.(check bool) "drained" true (S.draining srv);
  List.iter
    (fun path ->
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match J.parse text with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: invalid JSON: %s" path e));
      Sys.remove path)
    [ trace; metrics ];
  Pc_obs.Trace.set_enabled false;
  C.close c;
  ignore s

(* --------------------- telemetry & flight recorder -------------------- *)

module T = Pc_server.Telemetry

let mk_record id =
  {
    T.id;
    t_s = 1.5 +. float_of_int id;
    op = "bound";
    dataset = "digest";
    admission = "full";
    rungs = [ "exact" ];
    provenance = "exact";
    cache = "miss";
    sat_calls = 2;
    pivots = 3;
    cells = 4;
    nodes = 0;
    latency_ns = 1_000 * id;
    error = None;
  }

let test_flight_ring_wraps () =
  let f = T.Flight.create ~capacity:8 in
  Alcotest.(check (list int)) "empty ring" []
    (List.map (fun r -> r.T.id) (T.Flight.records f));
  for i = 1 to 20 do
    T.Flight.push f (mk_record i)
  done;
  Alcotest.(check int) "pushed counts everything" 20 (T.Flight.pushed f);
  let ids = List.map (fun r -> r.T.id) (T.Flight.records f) in
  Alcotest.(check (list int)) "last capacity records, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    ids;
  let dump = J.to_string (T.Flight.to_json f ~reason:"test") in
  (match Pc_obs.Json.validate dump with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flight dump invalid JSON: %s" e);
  let v = parse dump in
  Alcotest.(check (option string)) "schema tag" (Some "pcda-flight/1")
    (str v "schema");
  Alcotest.(check (option string)) "reason" (Some "test") (str v "reason")

(* Distinct fetch_and_add slots: within capacity, concurrent writers
   lose nothing at all — strictly tighter than the documented
   (writers - 1) bound, and every id is present exactly once. *)
let test_flight_concurrent_writers () =
  let writers = 8 and per = 100 in
  let f = T.Flight.create ~capacity:(writers * per) in
  let threads =
    List.init writers (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              T.Flight.push f (mk_record ((w * per) + i + 1))
            done)
          ())
  in
  List.iter Thread.join threads;
  let ids = List.map (fun r -> r.T.id) (T.Flight.records f) in
  Alcotest.(check int) "no record lost" (writers * per) (List.length ids);
  Alcotest.(check int) "all ids distinct"
    (writers * per)
    (List.length (List.sort_uniq compare ids))

let jpath v names =
  List.fold_left (fun acc n -> Option.bind acc (J.member n)) (Some v) names

let jnum v names = Option.bind (jpath v names) J.to_num

let test_telemetry_op () =
  let ((srv, _) as s) = start () in
  let c = connect srv in
  let line =
    Printf.sprintf {|{"op":"bound","query":%s}|} (J.to_string (J.Str sum_query))
  in
  Alcotest.(check bool) "miss computes" true (ok (req c line));
  Alcotest.(check bool) "hit replays" true (ok (req c line));
  (* windows cover complete slots only (0.25 s each): step past the
     slot boundary so the two requests become visible *)
  Thread.delay 0.3;
  (* default view: windowed SLO stats plus totals *)
  let v = req c {|{"op":"telemetry"}|} in
  Alcotest.(check bool) "telemetry ok" true (ok v);
  List.iter
    (fun w ->
      match jnum v [ "windows"; w; "qps" ] with
      | Some q -> Alcotest.(check bool) (w ^ " qps >= 0") true (q >= 0.)
      | None -> Alcotest.failf "missing %s window" w)
    [ "1s"; "10s"; "60s" ];
  (* the two bound requests land in the live 1s window *)
  (match jnum v [ "windows"; "1s"; "n" ] with
  | Some n -> Alcotest.(check bool) "window saw the requests" true (n >= 2.)
  | None -> Alcotest.fail "no n in 1s window");
  (match jnum v [ "windows"; "1s"; "cache_hit_rate" ] with
  | Some r ->
      Alcotest.(check bool) "hit rate reflects the replay" true
        (r > 0. && r <= 1.)
  | None -> Alcotest.fail "no cache_hit_rate");
  (match (jnum v [ "cache"; "hits" ], jnum v [ "cache"; "misses" ]) with
  | Some h, Some m ->
      Alcotest.(check bool) "cache totals" true (h >= 1. && m >= 1.)
  | _ -> Alcotest.fail "missing cache counters");
  (match jnum v [ "admission"; "full" ] with
  | Some n -> Alcotest.(check bool) "admitted full" true (n >= 1.)
  | None -> Alcotest.fail "missing admission counters");
  (match jnum v [ "last_id" ] with
  | Some n -> Alcotest.(check bool) "ids assigned" true (n >= 3.)
  | None -> Alcotest.fail "missing last_id");
  (* prometheus view: the exposition rides inside the JSON reply *)
  let v = req c {|{"op":"telemetry","view":"prometheus"}|} in
  Alcotest.(check bool) "prometheus ok" true (ok v);
  (match Option.bind (J.member "text" v) J.to_str with
  | Some text ->
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec scan i =
          i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "counter family present" true
        (has "pcda_server_requests ");
      Alcotest.(check bool) "window gauge present" true
        (has "pcda_window_qps{window=\"1s\"}");
      Alcotest.(check bool) "typed families" true (has "# TYPE");
      Alcotest.(check bool) "histogram summary present" true
        (has "pcda_server_request_ns_count")
  | None -> Alcotest.fail "prometheus view without text");
  (* flight view: the dump is served over the wire *)
  let v = req c {|{"op":"telemetry","view":"flight"}|} in
  Alcotest.(check bool) "flight ok" true (ok v);
  (match J.member "flight" v with
  | Some f -> (
      Alcotest.(check (option string)) "flight schema" (Some "pcda-flight/1")
        (str f "schema");
      match J.member "records" f with
      | Some (J.Arr records) ->
          Alcotest.(check bool) "records retained" true
            (List.length records >= 2);
          (* the cached replay's record says hit, the first one miss *)
          let caches =
            List.filter_map (fun r -> str r "cache") records
          in
          Alcotest.(check bool) "hit recorded" true (List.mem "hit" caches);
          Alcotest.(check bool) "miss recorded" true (List.mem "miss" caches);
          let rungs_of =
            List.filter_map
              (fun r ->
                match J.member "rungs" r with
                | Some (J.Arr (J.Str first :: _)) -> Some first
                | _ -> None)
              records
          in
          Alcotest.(check bool) "ladder walk starts at exact" true
            (List.mem "exact" rungs_of)
      | _ -> Alcotest.fail "flight without records")
  | None -> Alcotest.fail "no flight payload");
  (* unknown view is a structured error, not a crash *)
  let v = req c {|{"op":"telemetry","view":"bogus"}|} in
  Alcotest.(check string) "unknown view rejected" "bad-request" (err_code v);
  (* enriched stats op: cache + admission + uptime *)
  let v = req c {|{"op":"stats"}|} in
  Alcotest.(check bool) "stats ok" true (ok v);
  (match (jnum v [ "cache"; "hits" ], jnum v [ "admission"; "full" ]) with
  | Some _, Some _ -> ()
  | _ -> Alcotest.fail "stats missing cache/admission counters");
  (match jnum v [ "uptime_s" ] with
  | Some u -> Alcotest.(check bool) "uptime sane" true (u >= 0.)
  | None -> Alcotest.fail "stats missing uptime");
  C.close c;
  stop s

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_flight_dump_on_drain () =
  let flight = Filename.temp_file "pcda_flight" ".json" in
  let cfg = { S.default_config with S.flight_path = Some flight } in
  let ((srv, th) as s) = start ~cfg () in
  let c = connect srv in
  ignore
    (req c
       (Printf.sprintf {|{"op":"bound","query":%s}|}
          (J.to_string (J.Str sum_query))));
  Alcotest.(check bool) "shutdown ok" true (ok (req c {|{"op":"shutdown"}|}));
  Thread.join th;
  let text = read_file flight in
  (match Pc_obs.Json.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "drain flight dump invalid JSON: %s" e);
  let v = parse text in
  Alcotest.(check (option string)) "dump reason" (Some "drain")
    (str v "reason");
  (match J.member "records" v with
  | Some (J.Arr records) ->
      let ops = List.filter_map (fun r -> str r "op") records in
      Alcotest.(check bool) "bound request recorded" true
        (List.mem "bound" ops)
  | _ -> Alcotest.fail "drain dump without records");
  Sys.remove flight;
  C.close c;
  ignore s

let test_flight_dump_on_crash () =
  let flight = Filename.temp_file "pcda_flight_crash" ".json" in
  let cfg = { S.default_config with S.flight_path = Some flight } in
  let ((srv, _) as s) = start ~cfg () in
  (* every reply torn mid-write: the send fails, the server records the
     failing request and dumps the flight ring *)
  F.with_faults
    (F.config ~seed:4 [ (F.Sock_tear, 1.0) ])
    (fun () ->
      let c = connect srv in
      (match C.request c {|{"op":"ping"}|} with
      | Some _ -> Alcotest.fail "expected the torn socket to kill the reply"
      | None -> ());
      C.close c);
  (* the dump happens on the connection thread right after the failed
     send; give it a moment *)
  let rec wait_for_dump tries =
    let ready =
      try String.length (read_file flight) > 0 with Sys_error _ -> false
    in
    if ready then ()
    else if tries = 0 then Alcotest.fail "no crash dump appeared"
    else begin
      Thread.delay 0.05;
      wait_for_dump (tries - 1)
    end
  in
  wait_for_dump 40;
  let text = read_file flight in
  (match Pc_obs.Json.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "crash flight dump invalid JSON: %s" e);
  let v = parse text in
  Alcotest.(check (option string)) "dump reason" (Some "crash")
    (str v "reason");
  (match J.member "records" v with
  | Some (J.Arr records) ->
      let failing =
        List.exists
          (fun r ->
            str r "op" = Some "ping" && str r "error" = Some "send-failed")
          records
      in
      Alcotest.(check bool) "failing request's record present" true failing
  | _ -> Alcotest.fail "crash dump without records");
  Sys.remove flight;
  stop s

(* ------------------------------- chaos -------------------------------- *)

let test_chaos () =
  let ((srv, _) as s) = start () in
  let bad_replies = Atomic.make 0 in
  let answered = Atomic.make 0 in
  let cfg =
    F.config ~seed:2026 ~slow_s:0.0005
      [
        (F.Sat_fail, 0.3);
        (F.Sat_slow, 0.2);
        (F.Lp_doubt, 0.3);
        (F.Clock_skew, 0.1);
        (F.Sock_tear, 0.1);
        (F.Sock_close, 0.1);
      ]
  in
  F.with_faults cfg (fun () ->
      let requests =
        [
          Printf.sprintf {|{"op":"bound","query":%s}|}
            (J.to_string (J.Str sum_query));
          {|{"op":"bound","query":"SELECT COUNT(*)"}|};
          {|{"op":"bound","query":"SELECT AVG(price) WHERE branch = 'New York'"}|};
          "garbage %% line";
          {|{"op":"bound","query":"SELECT MIN(price)"}|};
        ]
      in
      let worker _ =
        Thread.create
          (fun () ->
            let c = ref (connect srv) in
            for i = 1 to 10 do
              let line = List.nth requests (i mod List.length requests) in
              match C.request !c line with
              | Some reply ->
                  (* every reply line must be a well-formed protocol
                     object: ok:true with an answer, or a structured
                     error — nothing in between *)
                  (match J.parse reply with
                  | Error _ -> Atomic.incr bad_replies
                  | Ok v -> (
                      Atomic.incr answered;
                      match (J.member "ok" v, J.member "error" v) with
                      | Some (J.Bool true), None -> ()
                      | Some (J.Bool false), Some _ -> ()
                      | _ -> Atomic.incr bad_replies))
              | None ->
                  (* injected socket fault killed the connection —
                     isolation means a fresh one works *)
                  C.close !c;
                  c := connect srv
            done;
            C.close !c)
          ()
      in
      let threads = List.init 8 worker in
      List.iter Thread.join threads);
  Alcotest.(check int) "every reply well-formed" 0 (Atomic.get bad_replies);
  Alcotest.(check bool) "most requests answered" true (Atomic.get answered > 0);
  (* the server survived: a clean client still gets service *)
  let c = connect srv in
  Alcotest.(check bool) "alive after the storm" true
    (ok (req c {|{"op":"stats"}|}));
  C.close c;
  stop s

let () =
  Alcotest.run "pc_server"
    [
      ( "protocol",
        [
          tc "session" `Quick test_session;
          tc "crash isolation" `Quick test_crash_isolation;
          tc "load op" `Quick test_load_op;
          tc "torn socket isolated" `Quick test_torn_socket_isolated;
        ] );
      ("concurrency", [ tc "8 clients" `Quick test_concurrent_clients ]);
      ( "admission",
        [
          tc "policy unit" `Quick test_admission_unit;
          tc "p99 SLO dimension" `Quick test_admission_p99_slo;
          tc "overload degrades, never rejects" `Quick test_overload_degrades;
        ] );
      ( "telemetry",
        [
          tc "flight ring wraps" `Quick test_flight_ring_wraps;
          tc "flight concurrent writers" `Quick test_flight_concurrent_writers;
          tc "telemetry op" `Quick test_telemetry_op;
          tc "flight dump on drain" `Quick test_flight_dump_on_drain;
          tc "flight dump on crash" `Quick test_flight_dump_on_crash;
        ] );
      ( "cache",
        [
          tc "replay is byte-identical" `Quick test_cache_replay_byte_identical;
          tc "disabled config never hits" `Quick test_cache_disabled;
          tc "load invalidates" `Quick test_load_invalidates_cache;
        ] );
      ("drain", [ tc "artifacts flushed" `Quick test_drain_flushes_artifacts ]);
      ("chaos", [ tc "faults + 8 clients" `Quick test_chaos ]);
    ]
