open Pc_stats
module Q = Pc_query.Query
module Relation = Pc_data.Relation
module V = Pc_data.Value
module Range = Pc_core.Range

let tc = Alcotest.test_case

let schema =
  Pc_data.Schema.of_names
    [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]

let make_relation rng n f =
  Relation.create schema
    (List.init n (fun i ->
         let t = float_of_int i in
         [| V.Num t; V.Num (f rng t) |]))

let uniform_relation rng n =
  make_relation rng n (fun rng _ -> Pc_util.Rng.uniform rng ~lo:0. ~hi:100.)

(* ----------------------------- Sample ------------------------------ *)

let test_uniform_sample () =
  let rng = Pc_util.Rng.create 1 in
  let rel = uniform_relation rng 500 in
  let s = Sample.uniform rng rel ~m:50 in
  Alcotest.(check int) "size" 50 (Relation.cardinality s);
  let s_all = Sample.uniform rng rel ~m:10_000 in
  Alcotest.(check int) "clipped" 500 (Relation.cardinality s_all)

let test_stratified_sample () =
  let rng = Pc_util.Rng.create 2 in
  let rel = uniform_relation rng 600 in
  let strata_of = Sample.strata_by_quantiles rel ~attr:"t" ~buckets:4 in
  let strata = Sample.stratified rng rel ~strata_of ~m:80 in
  Alcotest.(check int) "four strata" 4 (List.length strata);
  List.iter
    (fun (s : Sample.stratum) ->
      Alcotest.(check bool) "population recorded" true (s.Sample.population > 0);
      Alcotest.(check bool) "proportional share" true
        (Relation.cardinality s.Sample.rows >= 1))
    strata;
  let total_pop =
    List.fold_left (fun acc (s : Sample.stratum) -> acc + s.Sample.population) 0 strata
  in
  Alcotest.(check int) "partitions the population" 600 total_pop

(* ------------------------------- Ci -------------------------------- *)

let test_ci_count_covers () =
  (* with the full relation as "sample", the interval must contain the
     exact answer *)
  let rng = Pc_util.Rng.create 3 in
  let rel = uniform_relation rng 400 in
  let est =
    Ci.uniform_estimator ~name:"US" ~method_:Ci.Nonparametric ~confidence:0.99
      ~sample:rel ~n_total:400
  in
  let q = Q.count ~where_:[ Pc_predicate.Atom.between "t" 100. 199. ] () in
  match est.Estimator.estimate q with
  | Some r ->
      let truth = Option.get (Q.eval rel q) in
      Alcotest.(check bool) "covers exact count" true (Range.contains r truth)
  | None -> Alcotest.fail "expected estimate"

let test_ci_failure_rate_reasonable () =
  (* CLT intervals at 95% should cover the truth most of the time on
     benign uniform data *)
  let rng = Pc_util.Rng.create 4 in
  let rel = uniform_relation rng 2_000 in
  let failures = ref 0 and trials = 60 in
  for i = 1 to trials do
    let sample = Sample.uniform rng rel ~m:200 in
    let est =
      Ci.uniform_estimator ~name:"US" ~method_:Ci.Parametric ~confidence:0.95
        ~sample ~n_total:2_000
    in
    let lo = 10. *. float_of_int (i mod 5) in
    let q = Q.sum ~where_:[ Pc_predicate.Atom.between "t" (lo *. 20.) ((lo *. 20.) +. 500.) ] "v" in
    match (est.Estimator.estimate q, Q.eval rel q) with
    | Some r, Some truth -> if not (Range.contains r truth) then incr failures
    | _ -> incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "failure rate %d/%d below 25%%" !failures trials)
    true
    (float_of_int !failures /. float_of_int trials < 0.25)

let test_ci_nonparametric_wider () =
  let rng = Pc_util.Rng.create 5 in
  let rel = uniform_relation rng 1_000 in
  let sample = Sample.uniform rng rel ~m:100 in
  let q = Q.sum "v" in
  let width method_ =
    let est =
      Ci.uniform_estimator ~name:"x" ~method_ ~confidence:0.99 ~sample ~n_total:1_000
    in
    match est.Estimator.estimate q with
    | Some r -> Range.width r
    | None -> Alcotest.fail "expected estimate"
  in
  Alcotest.(check bool) "nonparametric at least as wide" true
    (width Ci.Nonparametric >= width Ci.Parametric)

let test_ci_empty_sample_abstains () =
  let rng = Pc_util.Rng.create 6 in
  let rel = uniform_relation rng 100 in
  let sample = Sample.uniform rng rel ~m:10 in
  let est =
    Ci.uniform_estimator ~name:"x" ~method_:Ci.Parametric ~confidence:0.99 ~sample
      ~n_total:100
  in
  (* AVG over a region the sample cannot hit *)
  let q = Q.avg ~where_:[ Pc_predicate.Atom.between "t" 1e6 2e6 ] "v" in
  Alcotest.(check bool) "abstains" true (est.Estimator.estimate q = None)

let test_stratified_estimator () =
  let rng = Pc_util.Rng.create 7 in
  let rel = uniform_relation rng 1_000 in
  let strata_of = Sample.strata_by_quantiles rel ~attr:"t" ~buckets:5 in
  let strata = Sample.stratified rng rel ~strata_of ~m:200 in
  let est =
    Ci.stratified_estimator ~name:"ST" ~method_:Ci.Nonparametric ~confidence:0.99
      ~strata
  in
  match (est.Estimator.estimate (Q.sum "v"), Q.eval rel (Q.sum "v")) with
  | Some r, Some truth ->
      Alcotest.(check bool) "covers the total" true (Range.contains r truth)
  | _ -> Alcotest.fail "expected estimate"

(* ------------------------------- Gmm -------------------------------- *)

let bimodal_relation rng n =
  make_relation rng n (fun rng _ ->
      if Pc_util.Rng.bool rng then Pc_util.Rng.gaussian rng ~mu:10. ~sigma:1.
      else Pc_util.Rng.gaussian rng ~mu:50. ~sigma:2.)

let test_gmm_fit_improves () =
  let rng = Pc_util.Rng.create 8 in
  let rel = bimodal_relation rng 500 in
  let m1 = Gmm.fit ~iters:1 ~k:2 (Pc_util.Rng.create 9) rel ~attrs:[ "v" ] in
  let m30 = Gmm.fit ~iters:40 ~k:2 (Pc_util.Rng.create 9) rel ~attrs:[ "v" ] in
  Alcotest.(check bool) "EM improves likelihood" true
    (Gmm.log_likelihood m30 rel >= Gmm.log_likelihood m1 rel -. 1e-6)

let test_gmm_recovers_modes () =
  let rng = Pc_util.Rng.create 10 in
  let rel = bimodal_relation rng 1_000 in
  let m = Gmm.fit ~iters:50 ~k:2 (Pc_util.Rng.create 11) rel ~attrs:[ "v" ] in
  let samples = Gmm.sample (Pc_util.Rng.create 12) m ~n:2_000 in
  let vs = Relation.column samples "v" in
  let near mu = Array.exists (fun v -> Float.abs (v -. mu) < 5.) vs in
  Alcotest.(check bool) "samples near mode 10" true (near 10.);
  Alcotest.(check bool) "samples near mode 50" true (near 50.);
  Alcotest.(check int) "sample size" 2_000 (Array.length vs)

let test_gmm_estimator () =
  let rng = Pc_util.Rng.create 13 in
  let rel = bimodal_relation rng 500 in
  let m = Gmm.fit ~iters:30 ~k:2 (Pc_util.Rng.create 14) rel ~attrs:[ "t"; "v" ] in
  let est = Gmm.estimator (Pc_util.Rng.create 15) m ~n_missing:500 ~trials:8 in
  match est.Estimator.estimate (Q.sum "v") with
  | Some r -> Alcotest.(check bool) "nonempty interval" true (Range.width r >= 0.)
  | None -> Alcotest.fail "expected estimate"

let test_gmm_validation () =
  Alcotest.(check bool) "empty relation rejected" true
    (try
       ignore
         (Gmm.fit (Pc_util.Rng.create 1) (Relation.create schema []) ~attrs:[ "v" ]);
       false
     with Invalid_argument _ -> true)

(* ---------------------------- Histogram ----------------------------- *)

let test_histogram_never_fails () =
  let rng = Pc_util.Rng.create 16 in
  let rel =
    make_relation rng 800 (fun rng _ -> Pc_util.Rng.pareto rng ~scale:1. ~shape:1.5)
  in
  let est = Histogram.estimator rel ~attrs:[ "t" ] ~bins:10 in
  let rng_q = Pc_util.Rng.create 17 in
  for _ = 1 to 40 do
    let lo = Pc_util.Rng.uniform rng_q ~lo:0. ~hi:700. in
    let q = Q.sum ~where_:[ Pc_predicate.Atom.between "t" lo (lo +. 80.) ] "v" in
    match (est.Estimator.estimate q, Q.eval rel q) with
    | Some r, Some truth ->
        Alcotest.(check bool) "histogram bound holds" true (Range.contains r truth)
    | None, _ -> Alcotest.fail "histogram abstained"
    | _, None -> ()
  done

(* --------------------------- Extrapolate ---------------------------- *)

let test_extrapolate () =
  let rng = Pc_util.Rng.create 18 in
  let rel = uniform_relation rng 100 in
  let observed = Relation.take 50 rel and missing = Relation.drop 50 rel in
  (match Extrapolate.estimate ~observed ~n_missing:50 (Q.count ()) with
  | Some est -> Alcotest.(check (float 1e-9)) "count scales" 100. est
  | None -> Alcotest.fail "expected estimate");
  (* unbiased missingness -> small relative error on SUM *)
  (match Extrapolate.relative_error ~observed ~missing (Q.sum "v") with
  | Some e -> Alcotest.(check bool) "error small when missing at random" true (e < 0.5)
  | None -> Alcotest.fail "expected error");
  (* adversarial missingness -> large error *)
  let split = Pc_synth.Missing.top_values rel ~attr:"v" ~fraction:0.5 in
  match
    Extrapolate.relative_error ~observed:split.Pc_synth.Missing.observed
      ~missing:split.Pc_synth.Missing.missing (Q.sum "v")
  with
  | Some e -> Alcotest.(check bool) "error large when correlated" true (e > 0.2)
  | None -> Alcotest.fail "expected error"

let prop_nonparametric_covers_with_full_sample =
  QCheck.Test.make ~name:"full-population sample always covers COUNT/SUM" ~count:50
    QCheck.(int_bound 10_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let rel = uniform_relation rng (50 + Pc_util.Rng.int rng 200) in
      let n = Relation.cardinality rel in
      let est =
        Ci.uniform_estimator ~name:"x" ~method_:Ci.Nonparametric ~confidence:0.9
          ~sample:rel ~n_total:n
      in
      let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:(float_of_int (n / 2)) in
      let q = Q.sum ~where_:[ Pc_predicate.Atom.between "t" lo (lo +. 50.) ] "v" in
      match (est.Estimator.estimate q, Q.eval rel q) with
      | Some r, Some truth -> Range.contains r truth
      | _ -> false)

let () =
  Alcotest.run "pc_stats"
    [
      ( "sample",
        [
          tc "uniform" `Quick test_uniform_sample;
          tc "stratified" `Quick test_stratified_sample;
        ] );
      ( "ci",
        [
          tc "count coverage" `Quick test_ci_count_covers;
          tc "failure rate sane" `Quick test_ci_failure_rate_reasonable;
          tc "nonparametric wider" `Quick test_ci_nonparametric_wider;
          tc "abstains on empty" `Quick test_ci_empty_sample_abstains;
          tc "stratified" `Quick test_stratified_estimator;
          QCheck_alcotest.to_alcotest prop_nonparametric_covers_with_full_sample;
        ] );
      ( "gmm",
        [
          tc "EM improves likelihood" `Quick test_gmm_fit_improves;
          tc "recovers modes" `Quick test_gmm_recovers_modes;
          tc "estimator" `Quick test_gmm_estimator;
          tc "validation" `Quick test_gmm_validation;
        ] );
      ("histogram", [ tc "hard bounds" `Quick test_histogram_never_fails ]);
      ("extrapolate", [ tc "scaling and bias" `Quick test_extrapolate ]);
    ]
