open Pc_store
module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module V = Pc_data.Value
module Range = Pc_core.Range
module Bounds = Pc_core.Bounds

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-6))

let schema =
  Pc_data.Schema.of_names
    [
      ("day", Pc_data.Schema.Numeric);
      ("city", Pc_data.Schema.Categorical);
      ("amount", Pc_data.Schema.Numeric);
    ]

let row day city amount = [| V.Num day; V.Str city; V.Num amount |]

let partition_rows base =
  [
    row base "Chicago" 10.;
    row (base +. 1.) "New York" 20.;
    row (base +. 2.) "Chicago" 30.;
  ]

let three_partition_store () =
  let store = Store.create schema in
  let store =
    Store.add_partition store ~id:"p1" (Pc_data.Relation.create schema (partition_rows 0.))
  in
  let store =
    Store.add_partition store ~id:"p2" (Pc_data.Relation.create schema (partition_rows 10.))
  in
  Store.add_partition store ~id:"p3" (Pc_data.Relation.create schema (partition_rows 20.))

(* --------------------------- partition ------------------------------ *)

let test_partition_summary () =
  let p =
    Partition.summarize ~id:"x" (Pc_data.Relation.create schema (partition_rows 5.))
  in
  Alcotest.(check int) "count" 3 p.Partition.summary.Partition.count;
  let day_range = List.assoc "day" p.Partition.summary.Partition.ranges in
  check_float "day lo" 5. (Pc_interval.Interval.lo_float day_range);
  check_float "day hi" 7. (Pc_interval.Interval.hi_float day_range);
  Alcotest.(check (list string)) "cities"
    [ "Chicago"; "New York" ]
    (List.assoc "city" p.Partition.summary.Partition.categories);
  Alcotest.(check bool) "summary holds" true (Partition.summary_holds p)

let test_partition_to_pc () =
  let rel = Pc_data.Relation.create schema (partition_rows 5.) in
  let p = Partition.summarize ~id:"x" rel in
  let pc = Partition.to_pc p in
  Alcotest.(check bool) "rows satisfy own zone map" true (Pc_core.Pc.holds rel pc);
  Alcotest.(check int) "frequency pinned" 3 pc.Pc_core.Pc.freq_lo;
  Alcotest.(check int) "frequency pinned hi" 3 pc.Pc_core.Pc.freq_hi

let test_partition_validation () =
  Alcotest.check_raises "empty partition"
    (Invalid_argument "Partition.summarize: empty partition") (fun () ->
      ignore (Partition.summarize ~id:"e" (Pc_data.Relation.create schema [])));
  let p =
    Partition.summarize ~id:"x" (Pc_data.Relation.create schema (partition_rows 0.))
  in
  let missing = Partition.mark_missing p in
  Alcotest.check_raises "rows of missing partition"
    (Invalid_argument "Partition.rows_exn: x is missing") (fun () ->
      ignore (Partition.rows_exn missing))

(* ----------------------------- store -------------------------------- *)

let test_store_fully_loaded_is_exact () =
  let store = three_partition_store () in
  match Store.query store (Q.sum "amount") with
  | Bounds.Range r ->
      check_float "exact lo" 180. r.Range.lo;
      check_float "exact hi" 180. r.Range.hi
  | _ -> Alcotest.fail "expected exact range"

let test_store_missing_partition_bounds () =
  let store = Store.mark_missing (three_partition_store ()) ~id:"p2" in
  Alcotest.(check int) "missing rows counted" 3 (Store.missing_count store);
  (match Store.query store (Q.sum "amount") with
  | Bounds.Range r ->
      (* loaded partitions contribute 120 exactly; the lost one holds
         exactly 3 rows with amounts in [10, 30] *)
      check_float "lo" (120. +. 30.) r.Range.lo;
      check_float "hi" (120. +. 90.) r.Range.hi;
      Alcotest.(check bool) "truth inside" true (Range.contains r 180.)
  | _ -> Alcotest.fail "expected range");
  (* COUNT is pinned: zone maps store exact counts *)
  match Store.query store (Q.count ()) with
  | Bounds.Range r ->
      check_float "count lo" 9. r.Range.lo;
      check_float "count hi" 9. r.Range.hi
  | _ -> Alcotest.fail "expected count range"

let test_store_query_with_predicate () =
  let store = Store.mark_missing (three_partition_store ()) ~id:"p2" in
  (* the lost partition's day range is [10, 12]: a query outside it is
     unaffected and exact *)
  let outside = Q.sum ~where_:[ Atom.between "day" 0. 5. ] "amount" in
  (match Store.query store outside with
  | Bounds.Range r ->
      check_float "unaffected lo" 60. r.Range.lo;
      check_float "unaffected hi" 60. r.Range.hi
  | _ -> Alcotest.fail "expected exact");
  (* a query inside the lost range is uncertain *)
  let inside = Q.sum ~where_:[ Atom.between "day" 10. 12. ] "amount" in
  match Store.query store inside with
  | Bounds.Range r ->
      Alcotest.(check bool) "uncertain" true (r.Range.hi > r.Range.lo);
      Alcotest.(check bool) "contains truth" true (Range.contains r 60.)
  | _ -> Alcotest.fail "expected range"

let test_store_extra_constraints_tighten () =
  let store = Store.mark_missing (three_partition_store ()) ~id:"p2" in
  let q = Q.sum "amount" in
  let plain =
    match Store.query store q with
    | Bounds.Range r -> r
    | _ -> Alcotest.fail "expected range"
  in
  (* the analyst knows lost Chicago rows were all below 15 *)
  let extra =
    Pc_core.Pc.make ~name:"chicago_low"
      ~pred:[ Atom.cat_eq "city" "Chicago" ]
      ~values:[ ("amount", Pc_interval.Interval.closed 0. 15.) ]
      ~freq:(0, 1000) ()
  in
  match Store.query ~extra:[ extra ] store q with
  | Bounds.Range r ->
      Alcotest.(check bool) "tighter hi" true (r.Range.hi <= plain.Range.hi +. 1e-9)
  | _ -> Alcotest.fail "expected range"

let test_store_restore () =
  let original = Pc_data.Relation.create schema (partition_rows 10.) in
  let store = Store.mark_missing (three_partition_store ()) ~id:"p2" in
  let store = Store.restore store ~id:"p2" original in
  (match Store.query store (Q.sum "amount") with
  | Bounds.Range r -> check_float "exact again" 180. r.Range.hi
  | _ -> Alcotest.fail "expected exact");
  (* restoring rows violating the zone map is rejected *)
  let bogus = Pc_data.Relation.create schema [ row 10. "Chicago" 9_999. ] in
  let broken = Store.mark_missing store ~id:"p3" in
  Alcotest.(check bool) "zone-map-violating restore rejected" true
    (try
       ignore (Store.restore broken ~id:"p3" bogus);
       false
     with Invalid_argument _ -> true)

let test_store_validation () =
  let store = three_partition_store () in
  Alcotest.(check bool) "duplicate id" true
    (try
       ignore
         (Store.add_partition store ~id:"p1"
            (Pc_data.Relation.create schema (partition_rows 0.)));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown id" true
    (try
       ignore (Store.mark_missing store ~id:"nope");
       false
     with Not_found -> true)

let test_store_dsl_roundtrip () =
  let store = three_partition_store () in
  let dsl = Store.summaries_to_dsl store in
  let pcs = Pc_parse.Pc_parser.parse dsl in
  Alcotest.(check int) "three summaries" 3 (List.length pcs);
  (* each parsed constraint still holds on its partition's rows *)
  List.iter2
    (fun pc (p : Partition.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "parsed %s holds" p.Partition.id)
        true
        (Pc_core.Pc.holds (Partition.rows_exn p) pc))
    pcs (Store.partitions store)

(* soundness: random partitioned datasets, random losses, random queries *)
let prop_store_sound =
  QCheck.Test.make ~name:"store ranges contain the full-data truth" ~count:100
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let n_parts = 2 + Pc_util.Rng.int rng 5 in
      let make_part i =
        let base = float_of_int (10 * i) in
        Pc_data.Relation.create schema
          (List.init
             (3 + Pc_util.Rng.int rng 20)
             (fun _ ->
               row
                 (base +. Pc_util.Rng.uniform rng ~lo:0. ~hi:12.)
                 (if Pc_util.Rng.bool rng then "Chicago" else "New York")
                 (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.)))
      in
      let parts = List.init n_parts make_part in
      let store =
        List.fold_left
          (fun (i, st) rel ->
            (i + 1, Store.add_partition st ~id:(Printf.sprintf "p%d" i) rel))
          (0, Store.create schema)
          parts
        |> snd
      in
      let full =
        List.fold_left Pc_data.Relation.union (Pc_data.Relation.create schema []) parts
      in
      (* lose a random nonempty subset of partitions *)
      let store =
        List.fold_left
          (fun st i ->
            if i = 0 || Pc_util.Rng.bool rng then
              Store.mark_missing st ~id:(Printf.sprintf "p%d" i)
            else st)
          store
          (List.init n_parts Fun.id)
      in
      let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:50. in
      let query =
        match Pc_util.Rng.int rng 4 with
        | 0 -> Q.count ~where_:[ Atom.between "day" lo (lo +. 15.) ] ()
        | 1 -> Q.sum ~where_:[ Atom.between "day" lo (lo +. 15.) ] "amount"
        | 2 -> Q.sum ~where_:[ Atom.cat_eq "city" "Chicago" ] "amount"
        | _ -> Q.avg ~where_:[ Atom.between "day" lo (lo +. 25.) ] "amount"
      in
      match (Store.query store query, Q.eval full query) with
      | Bounds.Infeasible, _ -> false
      | Bounds.Empty, None -> true
      | Bounds.Empty, Some _ -> false
      | Bounds.Range _, None -> true
      | Bounds.Range r, Some truth -> Range.contains r truth)

let () =
  Alcotest.run "pc_store"
    [
      ( "partition",
        [
          tc "summary" `Quick test_partition_summary;
          tc "to_pc" `Quick test_partition_to_pc;
          tc "validation" `Quick test_partition_validation;
        ] );
      ( "store",
        [
          tc "fully loaded is exact" `Quick test_store_fully_loaded_is_exact;
          tc "missing partition bounds" `Quick test_store_missing_partition_bounds;
          tc "query with predicate" `Quick test_store_query_with_predicate;
          tc "extra constraints tighten" `Quick test_store_extra_constraints_tighten;
          tc "restore" `Quick test_store_restore;
          tc "validation" `Quick test_store_validation;
          tc "DSL roundtrip" `Quick test_store_dsl_roundtrip;
          QCheck_alcotest.to_alcotest prop_store_sound;
        ] );
    ]
