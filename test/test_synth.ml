open Pc_synth
module Relation = Pc_data.Relation
module Rng = Pc_util.Rng

let tc = Alcotest.test_case

let test_sensor () =
  let rel = Sensor.generate (Rng.create 1) ~rows:5_000 in
  Alcotest.(check int) "rows" 5_000 (Relation.cardinality rel);
  Alcotest.(check bool) "schema" true
    (Pc_data.Schema.equal (Relation.schema rel) Sensor.schema);
  let light = Relation.column rel "light" in
  Alcotest.(check bool) "light nonnegative" true
    (Pc_util.Stat.minimum light >= 0.);
  (* daily periodicity: midday light beats midnight light *)
  let mean_in lo hi =
    let vals =
      Relation.fold
        (fun acc row ->
          let h = Float.rem (Pc_data.Value.as_num row.(1)) 24. in
          if h >= lo && h < hi then Pc_data.Value.as_num row.(2) :: acc else acc)
        [] rel
    in
    Pc_util.Stat.mean (Array.of_list vals)
  in
  Alcotest.(check bool) "midday brighter than midnight" true
    (mean_in 11. 15. > mean_in 0. 4.);
  (* reproducibility *)
  let rel2 = Sensor.generate (Rng.create 1) ~rows:5_000 in
  Alcotest.(check (float 0.)) "same seed same data"
    (Pc_util.Stat.sum light)
    (Pc_util.Stat.sum (Relation.column rel2 "light"))

let test_listings () =
  let rel = Listings.generate (Rng.create 2) ~rows:4_000 in
  Alcotest.(check int) "rows" 4_000 (Relation.cardinality rel);
  let price = Relation.column rel "price" in
  Alcotest.(check bool) "prices positive" true (Pc_util.Stat.minimum price > 0.);
  (* log-normal prices are right-skewed: mean well above median *)
  Alcotest.(check bool) "price skew" true
    (Pc_util.Stat.mean price > Pc_util.Stat.median price);
  let lat = Relation.column rel "latitude" in
  Alcotest.(check bool) "lat plausible" true
    (Pc_util.Stat.minimum lat > 40. && Pc_util.Stat.maximum lat < 41.2);
  Alcotest.(check bool) "room types present" true
    (List.length (Relation.distinct_strings rel "room_type") >= 2)

let test_border () =
  let rel = Border.generate (Rng.create 3) ~rows:4_000 ~ports:30 in
  Alcotest.(check int) "rows" 4_000 (Relation.cardinality rel);
  let value = Relation.column rel "value" in
  Alcotest.(check bool) "values nonnegative" true (Pc_util.Stat.minimum value >= 0.);
  (* Zipfian ports: the busiest port should hold a large share of rows *)
  let port = Relation.column rel "port" in
  let count_port p =
    Array.fold_left (fun acc x -> if x = p then acc + 1 else acc) 0 port
  in
  Alcotest.(check bool) "port skew" true
    (count_port 0. > 4_000 / 30 * 3)

let test_graphs () =
  let rng = Rng.create 4 in
  let r = Graphs.random_edges rng ~a:"a" ~b:"b" ~n:200 ~vertices:20 in
  Alcotest.(check int) "edge count" 200 (Relation.cardinality r);
  (* triangle counting cross-checked against brute force *)
  let s = Graphs.random_edges rng ~a:"b" ~b:"c" ~n:100 ~vertices:10 in
  let t = Graphs.random_edges rng ~a:"c" ~b:"a" ~n:100 ~vertices:10 in
  let r = Graphs.random_edges rng ~a:"a" ~b:"b" ~n:100 ~vertices:10 in
  let brute =
    let tuples rel =
      Array.to_list (Relation.tuples rel)
      |> List.map (fun row ->
             ( int_of_float (Pc_data.Value.as_num row.(0)),
               int_of_float (Pc_data.Value.as_num row.(1)) ))
    in
    let rs = tuples r and ss = tuples s and ts = tuples t in
    List.fold_left
      (fun acc (a, b) ->
        List.fold_left
          (fun acc (b', c) ->
            if b' <> b then acc
            else
              List.fold_left
                (fun acc (c', a') -> if c' = c && a' = a then acc + 1 else acc)
                acc ts)
          acc ss)
      0 rs
  in
  Alcotest.(check int) "triangle count matches brute force" brute
    (Graphs.triangle_count ~r ~s ~t)

let test_chain_join_count () =
  let rng = Rng.create 5 in
  let r1 = Graphs.random_edges rng ~a:"x1" ~b:"x2" ~n:50 ~vertices:8 in
  let r2 = Graphs.random_edges rng ~a:"x2" ~b:"x3" ~n:50 ~vertices:8 in
  (* 2-chain equals join size computed by nested loops *)
  let tuples rel =
    Array.to_list (Relation.tuples rel)
    |> List.map (fun row ->
           ( int_of_float (Pc_data.Value.as_num row.(0)),
             int_of_float (Pc_data.Value.as_num row.(1)) ))
  in
  let brute =
    List.fold_left
      (fun acc (_, b) ->
        acc + List.length (List.filter (fun (a, _) -> a = b) (tuples r2)))
      0 (tuples r1)
  in
  Alcotest.(check int) "2-chain matches brute force" brute
    (Graphs.chain_join_count [ r1; r2 ]);
  Alcotest.(check int) "empty chain is 0" 0 (Graphs.chain_join_count [])

let test_missing_random () =
  let rel = Sensor.generate (Rng.create 6) ~rows:1_000 in
  let split = Missing.random (Rng.create 7) rel ~fraction:0.3 in
  Alcotest.(check int) "missing size" 300
    (Relation.cardinality split.Missing.missing);
  Alcotest.(check int) "partition complete" 1_000
    (Relation.cardinality split.Missing.observed
    + Relation.cardinality split.Missing.missing);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Missing: fraction outside [0, 1]") (fun () ->
      ignore (Missing.random (Rng.create 1) rel ~fraction:1.5))

let test_missing_top_values () =
  let rel = Sensor.generate (Rng.create 8) ~rows:1_000 in
  let split = Missing.top_values rel ~attr:"light" ~fraction:0.25 in
  Alcotest.(check int) "exactly a quarter" 250
    (Relation.cardinality split.Missing.missing);
  let min_missing = Pc_util.Stat.minimum (Relation.column split.Missing.missing "light") in
  let max_observed = Pc_util.Stat.maximum (Relation.column split.Missing.observed "light") in
  Alcotest.(check bool) "missing rows dominate observed" true
    (min_missing >= max_observed -. 1e-9);
  (* degenerate fractions *)
  let none = Missing.top_values rel ~attr:"light" ~fraction:0. in
  Alcotest.(check int) "zero fraction" 0 (Relation.cardinality none.Missing.missing);
  let all = Missing.top_values rel ~attr:"light" ~fraction:1. in
  Alcotest.(check int) "full fraction" 1_000 (Relation.cardinality all.Missing.missing)

let test_missing_by_predicate () =
  let rel = Sensor.generate (Rng.create 9) ~rows:500 in
  let pred = [ Pc_predicate.Atom.between "time" 0. 100. ] in
  let split = Missing.by_predicate rel pred in
  Relation.iter
    (fun row ->
      Alcotest.(check bool) "missing satisfies predicate" true
        (Pc_predicate.Pred.eval Sensor.schema pred row))
    split.Missing.missing;
  Relation.iter
    (fun row ->
      Alcotest.(check bool) "observed violates predicate" false
        (Pc_predicate.Pred.eval Sensor.schema pred row))
    split.Missing.observed

let prop_top_values_exact_count =
  QCheck.Test.make ~name:"top_values removes exactly the requested count" ~count:60
    QCheck.(pair (int_bound 10_000) (float_bound_inclusive 1.))
    (fun (seed, fraction) ->
      let rel = Sensor.generate (Rng.create seed) ~rows:337 in
      let split = Missing.top_values rel ~attr:"voltage" ~fraction in
      let expected = int_of_float (Float.round (fraction *. 337.)) in
      Relation.cardinality split.Missing.missing = expected)

let () =
  Alcotest.run "pc_synth"
    [
      ( "generators",
        [
          tc "sensor" `Quick test_sensor;
          tc "listings" `Quick test_listings;
          tc "border" `Quick test_border;
        ] );
      ( "graphs",
        [
          tc "triangles" `Quick test_graphs;
          tc "chain join" `Quick test_chain_join_count;
        ] );
      ( "missing",
        [
          tc "random" `Quick test_missing_random;
          tc "top values" `Quick test_missing_top_values;
          tc "by predicate" `Quick test_missing_by_predicate;
          QCheck_alcotest.to_alcotest prop_top_values_exact_count;
        ] );
    ]
