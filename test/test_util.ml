open Pc_util

let check_float = Alcotest.(check (float 1e-6))

let test_mean_var () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stat.mean xs);
  check_float "variance" (5. /. 3.) (Stat.variance xs);
  check_float "single-obs variance" 0. (Stat.variance [| 42. |]);
  check_float "sum" 10. (Stat.sum xs)

let test_median_percentile () =
  check_float "odd median" 3. (Stat.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (Stat.median [| 4.; 1.; 2.; 3. |]);
  check_float "p0" 1. (Stat.percentile [| 1.; 2.; 3. |] 0.);
  check_float "p100" 3. (Stat.percentile [| 1.; 2.; 3. |] 100.);
  check_float "p50" 2. (Stat.percentile [| 1.; 2.; 3. |] 50.);
  check_float "p25 interp" 1.5 (Stat.percentile [| 1.; 2.; 3. |] 25.)

let test_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stat.mean: empty")
    (fun () -> ignore (Stat.mean [||]))

let test_normal_quantile () =
  check_float "median quantile" 0. (Stat.normal_quantile 0.5);
  Alcotest.(check bool)
    "97.5% quantile near 1.96" true
    (Float.abs (Stat.normal_quantile 0.975 -. 1.959964) < 1e-4);
  Alcotest.(check bool)
    "symmetric" true
    (Float.abs (Stat.normal_quantile 0.01 +. Stat.normal_quantile 0.99) < 1e-6)

let test_normal_cdf_roundtrip () =
  List.iter
    (fun p ->
      let x = Stat.normal_quantile p in
      Alcotest.(check bool)
        (Printf.sprintf "cdf(quantile(%g))" p)
        true
        (Float.abs (Stat.normal_cdf x -. p) < 1e-4))
    [ 0.05; 0.25; 0.5; 0.75; 0.9; 0.999 ]

let test_log_sum_exp () =
  check_float "lse of log 1,1" (log 2.) (Stat.log_sum_exp [| 0.; 0. |]);
  check_float "lse handles scale" 1000.
    (Stat.log_sum_exp [| 1000.; -1000. |]);
  Alcotest.(check bool)
    "empty is -inf" true
    (Stat.log_sum_exp [||] = neg_infinity)

let test_float_eps () =
  Alcotest.(check bool) "approx_eq" true (Float_eps.approx_eq 1. (1. +. 1e-12));
  Alcotest.(check bool) "leq" true (Float_eps.leq 1.0000000001 1.);
  Alcotest.(check bool) "lt strict" false (Float_eps.lt 1. 1.);
  Alcotest.(check bool) "is_integer" true (Float_eps.is_integer 3.0000000001);
  Alcotest.(check int) "round" 4 (Float_eps.round_to_int 3.6);
  check_float "clamp hi" 2. (Float_eps.clamp ~lo:0. ~hi:2. 5.)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = Array.init 20 (fun _ -> Rng.int a 1000) in
  let ys = Array.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (array int)) "same seed, same stream" xs ys

let test_rng_ranges () =
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let x = Rng.uniform rng ~lo:2. ~hi:5. in
    Alcotest.(check bool) "uniform in range" true (x >= 2. && x < 5.)
  done;
  for _ = 1 to 500 do
    let r = Rng.zipf rng ~n:10 ~s:1.1 in
    Alcotest.(check bool) "zipf rank" true (r >= 1 && r <= 10)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng ~mu:3. ~sigma:2.) in
  Alcotest.(check bool) "mean close" true (Float.abs (Stat.mean xs -. 3.) < 0.1);
  Alcotest.(check bool)
    "stddev close" true
    (Float.abs (Stat.stddev xs -. 2.) < 0.1)

let test_sample_without_replacement () =
  let rng = Rng.create 5 in
  let xs = Array.init 100 (fun i -> i) in
  let s = Rng.sample_without_replacement rng 30 xs in
  Alcotest.(check int) "size" 30 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 30 (List.length distinct);
  let all = Rng.sample_without_replacement rng 500 xs in
  Alcotest.(check int) "clipped to population" 100 (Array.length all)

let test_heap () =
  let h = Pc_util.Heap.create () in
  Alcotest.(check bool) "empty" true (Pc_util.Heap.is_empty h);
  List.iter (fun (p, v) -> Pc_util.Heap.push h p v)
    [ (1., "a"); (5., "b"); (3., "c"); (4., "d"); (2., "e") ];
  Alcotest.(check int) "size" 5 (Pc_util.Heap.size h);
  let order = ref [] in
  let rec drain () =
    match Pc_util.Heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "max-heap order" [ "b"; "d"; "c"; "e"; "a" ]
    (List.rev !order)

let heap_prop =
  QCheck.Test.make ~name:"heap pops in decreasing priority" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun ps ->
      let h = Pc_util.Heap.create () in
      List.iter (fun p -> Pc_util.Heap.push h p p) ps;
      let rec drain acc =
        match Pc_util.Heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      List.sort (fun a b -> Float.compare b a) ps = popped)

let percentile_prop =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.))
              (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Pc_util.Stat.percentile arr p in
      v >= Pc_util.Stat.minimum arr -. 1e-9
      && v <= Pc_util.Stat.maximum arr +. 1e-9)

(* ----------------------------- Clock -------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Pc_util.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Pc_util.Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld then %Ld" !prev t;
    prev := t
  done

let test_clock_elapsed_nonneg () =
  let since = Pc_util.Clock.now () in
  for _ = 1 to 100 do
    let d = Pc_util.Clock.elapsed_s ~since in
    Alcotest.(check bool) "elapsed never negative" true (d >= 0.)
  done

(* Span durations are differences of Clock.now_ns reads, so any pair of
   reads separated by some busy work must yield a non-negative delta
   that does not exceed the enclosing pair's delta. *)
let clock_span_prop =
  QCheck.Test.make ~name:"clock deltas are non-negative and nest" ~count:200
    QCheck.(int_range 0 500)
    (fun spins ->
      let t0 = Pc_util.Clock.now_ns () in
      let t1 = Pc_util.Clock.now_ns () in
      let s = ref 0 in
      for i = 1 to spins do
        s := !s + i
      done;
      ignore !s;
      let t2 = Pc_util.Clock.now_ns () in
      let inner = Int64.sub t2 t1 in
      let outer = Int64.sub t2 t0 in
      Int64.compare inner 0L >= 0 && Int64.compare outer inner >= 0)

let () =
  Alcotest.run "pc_util"
    [
      ( "stat",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_var;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "empty input raises" `Quick test_empty_raises;
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
          Alcotest.test_case "cdf/quantile roundtrip" `Quick
            test_normal_cdf_roundtrip;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
        ] );
      ( "float_eps",
        [ Alcotest.test_case "tolerant comparisons" `Quick test_float_eps ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "sampling w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap;
          QCheck_alcotest.to_alcotest heap_prop;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "elapsed non-negative" `Quick
            test_clock_elapsed_nonneg;
          QCheck_alcotest.to_alcotest clock_span_prop;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest percentile_prop ]);
    ]
