(* Pc_obs.Window: the sliding-window SLO monitor behind the server's
   live telemetry plane.

   The core correctness claim is checked as a qcheck property against a
   naive model: a full-history list of observations, filtered to the
   same slot-quantized window the ring covers, must agree with the ring
   on every statistic — counts and rates exactly, quantiles through the
   same bucket arithmetic. The ring then only differs from the model in
   capacity (it forgets what is older than its slots), never in value.

   The clock-skew tests pin the documented safety property: a skewed
   clock (composed at the call site, as the server composes
   [Pc_fault.Fault.clock_skew_s]) can shift which slots a window covers
   but never yields a negative count, rate, or span. *)

module W = Pc_obs.Window
module Registry = Pc_obs.Registry
module Fault = Pc_fault.Fault

let slot_s = 0.25
let n_slots = 256

type obs = {
  dt : float;  (* seconds after the base time *)
  lat : float;  (* latency, ns *)
  err : bool;
  deg : bool;
  cache : int;  (* 0 hit, 1 miss, 2 uncached *)
}

let cache_of = function
  | 0 -> W.Hit
  | 1 -> W.Miss
  | _ -> W.Uncached

(* The model mirrors the ring's quantization: reference epoch from
   [now], window = the [w] complete slots before it. *)
let naive_stats obs ~t0 ~now ~window_s =
  let epoch t = int_of_float (Float.max 0. t /. slot_s) in
  let e_now = epoch now in
  let w =
    max 1 (min (n_slots - 1) (int_of_float (Float.round (window_s /. slot_s))))
  in
  let inside o =
    let e = epoch (t0 +. o.dt) in
    e_now - w <= e && e <= e_now - 1
  in
  let sel = List.filter inside obs in
  let count f = List.length (List.filter f sel) in
  let n = List.length sel in
  let buckets = Array.make Registry.Histogram.n_buckets 0 in
  List.iter
    (fun o ->
      let b = Registry.Histogram.bucket_of_ns o.lat in
      buckets.(b) <- buckets.(b) + 1)
    sel;
  let span = float_of_int w *. slot_s in
  let frac num den =
    if den <= 0 then 0. else float_of_int num /. float_of_int den
  in
  let hits = count (fun o -> o.cache = 0) in
  let misses = count (fun o -> o.cache = 1) in
  ( n,
    float_of_int n /. span,
    frac (count (fun o -> o.err)) n,
    frac (count (fun o -> o.deg)) n,
    frac hits (hits + misses),
    W.percentile_ns buckets 50.,
    W.percentile_ns buckets 99.,
    span )

let obs_gen =
  QCheck.Gen.(
    map5
      (fun dt lat err deg cache -> { dt; lat; err; deg; cache })
      (float_range 0. 30.) (float_range 1. 1e9) bool bool (int_range 0 2))

let window_matches_naive_prop =
  QCheck.Test.make ~name:"window agrees with naive full-history model"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (1 -- 120) obs_gen) (float_range 0.5 70.)))
    (fun (obs, window_s) ->
      let t0 = 1000. in
      let now = t0 +. 32. in
      let w = W.create ~slot_s ~slots:n_slots () in
      List.iter
        (fun o ->
          W.observe ~now:(t0 +. o.dt) w ~latency_ns:o.lat ~error:o.err
            ~degraded:o.deg ~cache:(cache_of o.cache))
        obs;
      let s = W.snapshot ~now w ~window_s in
      let n, qps, er, df, chr, p50, p99, span =
        naive_stats obs ~t0 ~now ~window_s
      in
      let feq a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs b) in
      s.W.n = n && feq s.W.qps qps && feq s.W.error_rate er
      && feq s.W.degraded_fraction df
      && feq s.W.cache_hit_rate chr
      && feq s.W.p50_ns p50 && feq s.W.p99_ns p99
      && feq s.W.window_s span)

let assert_non_negative label (s : W.stats) =
  let check name v =
    if not (v >= 0. && Float.is_finite v) then
      Alcotest.failf "%s: %s = %g (negative or non-finite)" label name v
  in
  Alcotest.(check bool) (label ^ ": n >= 0") true (s.W.n >= 0);
  check "qps" s.W.qps;
  check "error_rate" s.W.error_rate;
  check "degraded_fraction" s.W.degraded_fraction;
  check "cache_hit_rate" s.W.cache_hit_rate;
  check "window_s" s.W.window_s;
  check "p99_ns" s.W.p99_ns

(* Rotation under injected clock skew: observations land at skew-jumped
   times (the composition the server uses), snapshots interleave at
   skewed and unskewed times — time effectively jumps forward and
   "back". Every snapshot must stay non-negative, and a post-skew
   snapshot must still see the post-skew observations. *)
let test_clock_skew_never_negative () =
  Fault.configure
    (Fault.config ~seed:11 ~skew_s:90. [ (Fault.Clock_skew, 0.5) ]);
  Fun.protect ~finally:Fault.disable (fun () ->
      let w = W.create ~slot_s ~slots:n_slots () in
      let t0 = 5000. in
      for i = 0 to 199 do
        let now = t0 +. (0.05 *. float_of_int i) +. Fault.clock_skew_s () in
        W.observe ~now w ~latency_ns:1e6 ~error:false ~degraded:false
          ~cache:W.Uncached;
        if i mod 20 = 0 then begin
          (* skewed reading *)
          assert_non_negative "skewed"
            (W.snapshot ~now:(t0 +. Fault.clock_skew_s ()) w ~window_s:1.);
          (* unskewed reading: behind [latest] whenever skew recorded
             ahead — the reference clamps, nothing goes negative *)
          assert_non_negative "unskewed" (W.snapshot ~now:t0 w ~window_s:10.)
        end
      done;
      let s = W.snapshot ~now:(t0 +. 10. +. 90.) w ~window_s:60. in
      assert_non_negative "final" s;
      Alcotest.(check bool) "skewed observations were recorded" true (s.W.n > 0))

(* A skew jump larger than the whole ring: every new observation lands
   past the retained slots, old ones become too old to record. Nothing
   wraps onto stale epochs and rates stay clamped at zero or above. *)
let test_skew_past_ring_is_safe () =
  let w = W.create ~slot_s ~slots:n_slots () in
  let t0 = 300. in
  W.observe ~now:t0 w ~latency_ns:1e6 ~error:false ~degraded:false
    ~cache:W.Uncached;
  let jumped = t0 +. (slot_s *. float_of_int (4 * n_slots)) in
  W.observe ~now:jumped w ~latency_ns:2e6 ~error:true ~degraded:true
    ~cache:W.Miss;
  (* the pre-jump observation is now older than every retained slot *)
  W.observe ~now:t0 w ~latency_ns:3e6 ~error:false ~degraded:false
    ~cache:W.Hit;
  let s = W.snapshot ~now:(jumped +. slot_s) w ~window_s:60. in
  assert_non_negative "post-jump" s;
  Alcotest.(check int) "only the post-jump observation is visible" 1 s.W.n;
  let stale = W.snapshot ~now:t0 w ~window_s:60. in
  assert_non_negative "stale-clock snapshot" stale

let test_empty_window () =
  let w = W.create () in
  let s = W.snapshot ~now:123.4 w ~window_s:10. in
  Alcotest.(check int) "no observations" 0 s.W.n;
  assert_non_negative "empty" s;
  Alcotest.(check (float 0.)) "qps 0" 0. s.W.qps;
  Alcotest.(check (float 0.)) "p99 0" 0. s.W.p99_ns

(* Concurrent writers: the documented loss bound is (writers - 1) per
   slot rotation. All writers target one fixed timestamp (one slot, one
   rotation), so at least [total - (writers - 1)] must be visible. *)
let test_concurrent_writers_loss_bound () =
  let w = W.create ~slot_s ~slots:n_slots () in
  let writers = 8 and per = 500 in
  let t_obs = 900. in
  let threads =
    List.init writers (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per do
              W.observe ~now:t_obs w ~latency_ns:5e5 ~error:false
                ~degraded:false ~cache:W.Hit
            done)
          ())
  in
  List.iter Thread.join threads;
  let s = W.snapshot ~now:(t_obs +. 1.) w ~window_s:60. in
  let total = writers * per in
  Alcotest.(check bool)
    (Printf.sprintf "at most %d lost (saw %d of %d)" (writers - 1) s.W.n total)
    true
    (s.W.n >= total - (writers - 1) && s.W.n <= total)

let () =
  Alcotest.run "pc_obs window"
    [
      ( "window",
        [
          QCheck_alcotest.to_alcotest window_matches_naive_prop;
          Alcotest.test_case "clock skew never yields negative rates" `Quick
            test_clock_skew_never_negative;
          Alcotest.test_case "skew past the ring is safe" `Quick
            test_skew_past_ring_is_safe;
          Alcotest.test_case "empty window" `Quick test_empty_window;
          Alcotest.test_case "concurrent writers loss bound" `Quick
            test_concurrent_writers_loss_bound;
        ] );
    ]
