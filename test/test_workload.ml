open Pc_workload
module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module Range = Pc_core.Range
module Relation = Pc_data.Relation

let tc = Alcotest.test_case

let schema =
  Pc_data.Schema.of_names
    [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]

let relation rng n =
  Relation.create schema
    (List.init n (fun _ ->
         [|
           Pc_data.Value.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.);
           Pc_data.Value.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:10.);
         |]))

(* ----------------------------- querygen ----------------------------- *)

let test_querygen_shape () =
  let rng = Pc_util.Rng.create 1 in
  let rel = relation rng 500 in
  let queries =
    Querygen.random_queries rng rel ~attrs:[ "t" ] ~agg:(Querygen.Sum "v") ~n:50
  in
  Alcotest.(check int) "count" 50 (List.length queries);
  List.iter
    (fun (q : Q.t) ->
      Alcotest.(check bool) "sum agg" true (q.Q.agg = Q.Sum "v");
      Alcotest.(check int) "one atom" 1 (List.length q.Q.where_);
      match q.Q.where_ with
      | [ Atom.Num_range ("t", iv) ] ->
          let lo = Pc_interval.Interval.lo_float iv in
          let hi = Pc_interval.Interval.hi_float iv in
          Alcotest.(check bool) "window inside domain" true (lo >= 0. && hi <= 100.5);
          let width = hi -. lo in
          Alcotest.(check bool) "selectivity respected" true
            (width >= 0.05 *. 100. -. 1e-6 && width <= 0.3 *. 100. +. 1e-6)
      | _ -> Alcotest.fail "unexpected predicate")
    queries

let test_querygen_validation () =
  let rng = Pc_util.Rng.create 2 in
  let rel = relation rng 100 in
  Alcotest.(check bool) "bad selectivity" true
    (try
       ignore
         (Querygen.random_queries ~selectivity:(0.5, 0.2) rng rel ~attrs:[ "t" ]
            ~agg:Querygen.Count ~n:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------ metrics ----------------------------- *)

let test_metrics () =
  let outcomes =
    [
      Metrics.outcome ~truth:(Some 10.) ~estimate:(Some (Range.make 5. 20.)) ();
      Metrics.outcome ~provenance:Pc_core.Bounds.Trivial ~truth:(Some 10.)
        ~estimate:(Some (Range.make 11. 20.)) ();
      Metrics.outcome ~truth:(Some 10.) ~estimate:None ();
      Metrics.outcome ~truth:None ~estimate:None ();
    ]
  in
  let s = Metrics.summarize outcomes in
  Alcotest.(check int) "scored queries" 3 s.Metrics.queries;
  Alcotest.(check int) "failures" 2 s.Metrics.failures;
  Alcotest.(check (float 1e-9)) "rate" (200. /. 3.) s.Metrics.failure_rate;
  (* over-estimation uses hi/truth: (20/10, 20/10) -> median 2 *)
  Alcotest.(check (float 1e-9)) "median over" 2. s.Metrics.median_over_estimation;
  Alcotest.(check int) "degraded count" 1 s.Metrics.degraded

let test_metrics_empty () =
  let s = Metrics.summarize [] in
  Alcotest.(check int) "no queries" 0 s.Metrics.queries;
  Alcotest.(check (float 0.)) "zero rate" 0. s.Metrics.failure_rate;
  Alcotest.(check bool) "nan over" true (Float.is_nan s.Metrics.median_over_estimation)

(* Regression: an empty workload's nan medians must serialize as JSON
   null, not as a bare nan token that poisons the whole document. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_report_json_no_nan () =
  let s = Metrics.summarize [] in
  let json = Report.json_of_summary s in
  Alcotest.(check bool) "no nan/inf value tokens" false
    (contains json ": nan" || contains json ": inf" || contains json ": -inf");
  Alcotest.(check bool) "null medians" true
    (contains json "\"median_over_estimation\": null");
  match Pc_obs.Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "summary JSON invalid: %s" msg

(* ------------------------------ runner ------------------------------ *)

let test_runner_pc_never_fails () =
  let rng = Pc_util.Rng.create 3 in
  let missing = relation rng 300 in
  let set =
    Pc_core.Pc_set.make
      (Pc_core.Generate.corr_partition missing ~attrs:[ "t" ] ~n:10 ())
  in
  let queries =
    Querygen.random_queries rng missing ~attrs:[ "t" ] ~agg:(Querygen.Sum "v") ~n:40
  in
  let results =
    Runner.run ~baselines:[ Runner.of_pc_set "PC" set ] ~missing ~queries
  in
  match results with
  | [ ("PC", s) ] ->
      Alcotest.(check int) "zero failures" 0 s.Metrics.failures;
      Alcotest.(check bool) "over-estimation at least 1" true
        (s.Metrics.median_over_estimation >= 1. -. 1e-9)
  | _ -> Alcotest.fail "unexpected results"

let test_runner_labels_in_order () =
  let rng = Pc_util.Rng.create 4 in
  let missing = relation rng 100 in
  let trivial label = { Runner.label; answer = (fun _ -> (None, None)) } in
  let results =
    Runner.run
      ~baselines:[ trivial "a"; trivial "b"; trivial "c" ]
      ~missing
      ~queries:[ Q.count () ]
  in
  Alcotest.(check (list string)) "order preserved" [ "a"; "b"; "c" ]
    (List.map fst results)

(* --------------------------- experiments ---------------------------- *)

let test_experiments_registry () =
  let ids = List.map (fun (id, _, _) -> id) Experiments.all in
  Alcotest.(check int) "nineteen experiments" 19 (List.length ids);
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required ids))
    [ "fig1"; "fig3"; "fig4"; "tab1"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "fig11"; "fig12"; "tab2" ];
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_experiment_smoke () =
  (* tiny-scale smoke run of a cheap experiment, output suppressed *)
  let cfg = { Experiments.seed = 1; scale = 0.02; queries = 5; jobs = 1 } in
  let dev_null = open_out (Filename.null) in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      close_out_noerr dev_null)
    (fun () ->
      Experiments.fig7_decomposition cfg;
      Experiments.fig12_joins cfg;
      Experiments.ablation_milp cfg)

let () =
  Alcotest.run "pc_workload"
    [
      ( "querygen",
        [
          tc "shape" `Quick test_querygen_shape;
          tc "validation" `Quick test_querygen_validation;
        ] );
      ( "metrics",
        [
          tc "summarize" `Quick test_metrics;
          tc "empty" `Quick test_metrics_empty;
          tc "json no nan" `Quick test_report_json_no_nan;
        ] );
      ( "runner",
        [
          tc "pc never fails" `Quick test_runner_pc_never_fails;
          tc "label order" `Quick test_runner_labels_in_order;
        ] );
      ( "experiments",
        [
          tc "registry" `Quick test_experiments_registry;
          tc "smoke" `Slow test_experiment_smoke;
        ] );
    ]
