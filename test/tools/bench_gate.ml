(* CI perf-regression gate over the committed bench baselines.

   Usage:
     bench_gate --kind decompose --committed BENCH_decompose.json --fresh fresh.json
     bench_gate --kind serve     --committed BENCH_serve.json     --fresh fresh.json

   Diffs a freshly measured baseline against the committed one with
   per-key tolerances: a fresh value more than the key's allowed
   fraction worse than the committed value (higher pivots/latency, lower
   throughput/speedup) fails the gate, as does any required schema key
   missing from either file, or a fresh schema_version older than the
   committed one. Exit 0 = gate passed, 1 = regression or schema
   violation, 2 = usage/IO error.

   Tolerances are deliberately per-key (one table below, not a global
   knob): pivot counts are deterministic and get the tight 25% bound the
   CI contract names, and wall-clock keys share that bound per the same
   contract — if a runner class proves noisier than that, widen the
   single affected row, not the gate. *)

module J = Pc_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dotted-path lookup: "milp_solve_pivots.warm" *)
let lookup path v =
  let rec go segs v =
    match segs with
    | [] -> Some v
    | s :: rest -> ( match J.member s v with None -> None | Some v -> go rest v)
  in
  go (String.split_on_char '.' path) v

let num_at path v = Option.bind (lookup path v) J.to_num

type dir = Higher_better | Lower_better

(* (key, direction, allowed fractional regression) *)
let checks_decompose =
  [
    ("milp_solve_pivots.warm", Lower_better, 0.25);
    ("milp_solve_pivots.cold", Lower_better, 0.25);
    ("lp_pivots_total", Lower_better, 0.25);
    (* the smoke workload's wall is ~15 ms — scheduler noise swamps a
       tight bound, so this row only catches order-of-magnitude breaks *)
    ("end_to_end_bound.jobs1_wall_s", Lower_better, 1.00);
    (* effective parallelism swings with co-tenant load on shared runners *)
    ("end_to_end_bound.speedup_jobs4_over_jobs1", Higher_better, 0.60);
    (* the ingest micro's wall times are ~ms-scale; the speedup ratio is
       the stable signal and carries the tight bound (plus the 5x hard
       floor below) *)
    ("incremental_rebound.rebound_ns", Lower_better, 1.00);
    ("incremental_rebound.speedup", Higher_better, 0.60);
  ]

(* the schema-v6 shape: all of these must exist in both files *)
let required_decompose =
  [
    "schema_version";
    "micro_ns_per_run";
    "decompose_dfs_rewrite.cells";
    "decompose_fdd.cells";
    "decompose_fdd.matches_dfs_rewrite";
    "jobs_policy.effective";
    "milp_solve_pivots.warm";
    "milp_solve_pivots.cold";
    "lp_pivots_total";
    "lp_warm_starts";
    "fig8_simplex_scaling.sizes";
    "incremental_rebound.cells";
    "incremental_rebound.rebound_ns";
    "incremental_rebound.recompute_ns";
    "incremental_rebound.speedup";
    "incremental_rebound.answers_agree";
    "phase_totals_ns";
    "end_to_end_bound.jobs1_wall_s";
    "end_to_end_bound.speedup_jobs4_over_jobs1";
  ]

let checks_serve =
  [
    ("nocache.qps", Higher_better, 0.25);
    ("cached.qps", Higher_better, 0.25);
    (* p99 over 320 requests is a noisy tail statistic; the qps rows
       above carry the tight latency bound in aggregate *)
    ("nocache.p99_ns", Lower_better, 0.75);
    ("cached.p99_ns", Lower_better, 0.75);
    ("qps_speedup_cached_over_nocache", Higher_better, 0.25);
    (* the streaming-ingestion phase: append throughput carries the
       tight 25% bound per the CI contract; its p99 is tail-noisy *)
    ("ingest.rows_per_s", Higher_better, 0.25);
    ("ingest.qps", Higher_better, 0.25);
    ("ingest.p99_ns", Lower_better, 0.75);
  ]

let required_serve =
  [
    "schema_version";
    "config.clients";
    "total_requests_per_phase";
    "nocache.qps";
    "nocache.p99_ns";
    "cached.qps";
    "cached.p99_ns";
    "cached.cache_hits";
    "ingest.batches";
    "ingest.rows";
    "ingest.rows_per_s";
    "ingest.qps";
    "ingest.p99_ns";
    "ingest.cache_hits";
    "qps_speedup_cached_over_nocache";
  ]

let () =
  let kind = ref "" and committed = ref "" and fresh = ref "" in
  let specs =
    [
      ("--kind", Arg.Set_string kind, "decompose|serve baseline flavor");
      ("--committed", Arg.Set_string committed, "FILE committed baseline");
      ("--fresh", Arg.Set_string fresh, "FILE freshly measured baseline");
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench_gate: per-key perf-regression gate over bench baselines";
  let checks, required =
    match !kind with
    | "decompose" -> (checks_decompose, required_decompose)
    | "serve" -> (checks_serve, required_serve)
    | k ->
        Printf.eprintf "bench_gate: unknown --kind %S (decompose|serve)\n" k;
        exit 2
  in
  if !committed = "" || !fresh = "" then begin
    prerr_endline "bench_gate: --committed and --fresh are both required";
    exit 2
  end;
  let load label path =
    match J.parse (read_file path) with
    | Ok v -> v
    | Error msg ->
        Printf.eprintf "bench_gate: %s %s: invalid JSON: %s\n" label path msg;
        exit 2
    | exception Sys_error msg ->
        Printf.eprintf "bench_gate: %s\n" msg;
        exit 2
  in
  let cv = load "committed" !committed in
  let fv = load "fresh" !fresh in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        Printf.printf "FAIL  %s\n" s)
      fmt
  in
  (* 1. schema shape: every required key present in both files; the
     message names the offending file so a red CI log is actionable
     without reproducing locally *)
  List.iter
    (fun key ->
      if lookup key fv = None then
        fail "%s: missing from fresh baseline %s (--kind %s schema)" key !fresh
          !kind;
      if lookup key cv = None then
        fail "%s: missing from committed baseline %s (--kind %s schema)" key
          !committed !kind)
    required;
  (* 2. no schema downgrade: the fresh run must speak at least the
     committed schema (bench itself refuses the opposite overwrite) *)
  (match (num_at "schema_version" cv, num_at "schema_version" fv) with
  | Some c, Some f when f < c ->
      fail
        "schema_version: fresh %s carries v%g, older than v%g in committed %s \
         (rebuild bench from the matching checkout)"
        !fresh f c !committed
  | _ -> ());
  (* 3. per-key tolerance diffs *)
  List.iter
    (fun (key, dir, tol) ->
      match (num_at key cv, num_at key fv) with
      | Some c, Some f when Float.abs c > 1e-12 ->
          let reg =
            match dir with
            | Lower_better -> (f -. c) /. Float.abs c
            | Higher_better -> (c -. f) /. Float.abs c
          in
          let verdict = if reg > tol then "FAIL" else "ok" in
          if reg > tol then incr failures;
          Printf.printf "%-4s  %-45s committed %14.2f  fresh %14.2f  regression %+6.1f%% (tol %.0f%%)\n"
            verdict key c f (100. *. reg) (100. *. tol)
      | Some _, Some _ -> Printf.printf "ok    %-45s committed ~0, skipped\n" key
      | _ -> () (* missing keys already reported by the shape pass *))
    checks;
  (* 4. flavor-specific hard floors *)
  (match !kind with
  | "serve" ->
      (match num_at "cached.cache_hits" fv with
      | Some h when h <= 0. ->
          fail "cached.cache_hits: fresh run %s recorded zero hits" !fresh
      | _ -> ());
      (match num_at "ingest.cache_hits" fv with
      | Some h when h <= 0. ->
          fail
            "ingest.cache_hits: fresh run %s recorded zero hits across append \
             batches (delta-scoped invalidation is evicting everything)"
            !fresh
      | _ -> ())
  | _ -> (
      (match num_at "lp_warm_starts" fv with
      | Some w when w <= 0. ->
          fail "lp_warm_starts: warm path never engaged in fresh run %s" !fresh
      | _ -> ());
      match num_at "incremental_rebound.speedup" fv with
      | Some s when s < 5. ->
          fail
            "incremental_rebound.speedup: %.2fx in fresh run %s is under the \
             5x floor"
            s !fresh
      | _ -> ()));
  if !failures > 0 then begin
    Printf.printf "bench gate FAILED: %d violation(s) (%s vs %s)\n" !failures
      !fresh !committed;
    exit 1
  end;
  Printf.printf "bench gate OK (%s vs %s)\n" !fresh !committed
