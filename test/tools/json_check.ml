(* Validate that each file argument parses as a single JSON document
   (RFC 8259 — no NaN/Infinity tokens, no trailing garbage). Used by CI
   and the cram tests to check --trace / --metrics artifacts without
   depending on an external JSON tool. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: json_check FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Pc_obs.Json.validate (read_file path) with
      | Ok () -> Printf.printf "%s: valid JSON\n" path
      | Error msg ->
          Printf.eprintf "%s: invalid JSON: %s\n" path msg;
          failed := true
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          failed := true)
    args;
  if !failed then exit 1
